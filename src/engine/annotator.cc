#include "engine/annotator.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/parallel.h"
#include "common/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xpath/ast.h"

namespace xmlac::engine {

namespace {

// Nodes whose sign was set to '+' vs '-' (the paper's signing work metric).
void ReportSigned(char sign, size_t n) {
  obs::IncrementCounter(
      sign == '+' ? "annotator.nodes_signed_plus" : "annotator.nodes_signed_minus",
      n);
}

char DefaultSign(const policy::Policy& policy) {
  return policy.default_semantics() == policy::DefaultSemantics::kAllow ? '+'
                                                                        : '-';
}

char MarkSign(const policy::AnnotationPlan& plan) {
  return plan.mark == policy::Effect::kAllow ? '+' : '-';
}

std::vector<size_t> AllRules(const policy::Policy& policy) {
  std::vector<size_t> out(policy.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

bool Cached(const AnnotationContext* ctx) {
  return ctx != nullptr && ctx->rule_cache != nullptr;
}

// Per-rule scope bitmaps for `subset` through the cache: hits are shared
// immutably, distinct missing paths are evaluated once each (concurrently
// when the backend supports it) and installed at ctx.epoch.
Result<std::vector<RuleScopeCache::BitmapPtr>> RuleScopes(
    Backend* backend, const policy::Policy& policy,
    const std::vector<size_t>& subset, const AnnotationContext& ctx) {
  obs::ScopedSpan span("annotate.rule_scopes");
  RuleScopeCache* cache = ctx.rule_cache;
  const std::string store = backend->name();
  const size_t n = subset.size();
  std::vector<RuleScopeCache::BitmapPtr> out(n);
  std::vector<std::string> keys(n);

  // A distinct missing path and the positions in `out` that want it (the
  // same path often backs several rules — both effects, several subjects'
  // optimizer leftovers).
  struct Miss {
    const xpath::Path* path;
    const std::string* key;
    std::vector<size_t> positions;
  };
  std::vector<Miss> misses;
  std::unordered_map<std::string_view, size_t> miss_index;
  for (size_t k = 0; k < n; ++k) {
    keys[k] = xpath::CanonicalKey(policy.rules()[subset[k]].resource);
    out[k] = cache->Lookup(store, keys[k], ctx.epoch);
    if (out[k] != nullptr) continue;
    auto [it, inserted] = miss_index.try_emplace(keys[k], misses.size());
    if (inserted) {
      misses.push_back(
          Miss{&policy.rules()[subset[k]].resource, &keys[k], {}});
    }
    misses[it->second].positions.push_back(k);
  }
  if (span.active()) {
    span.AddCount("rules", static_cast<int64_t>(n));
    span.AddCount("misses", static_cast<int64_t>(misses.size()));
  }

  if (!misses.empty()) {
    std::vector<Status> statuses(misses.size(), Status::OK());
    std::vector<RuleScopeCache::BitmapPtr> computed(misses.size());
    auto evaluate_one = [&](size_t m) {
      obs::ScopedTimer rule_timer("annotator.rule_scope_us");
      auto ids = backend->EvaluateQuery(*misses[m].path);
      if (!ids.ok()) {
        statuses[m] = ids.status();
        return;
      }
      auto bitmap = std::make_shared<NodeBitmap>(NodeBitmap::FromIds(*ids));
      cache->Insert(store, *misses[m].key, ctx.epoch, bitmap);
      computed[m] = std::move(bitmap);
    };
    size_t threads = 1;
    if (backend->SupportsParallelEval() && misses.size() > 1) {
      threads = ctx.parallel_rules == 0 ? DefaultParallelism()
                                        : ctx.parallel_rules;
    }
    ParallelFor(misses.size(), threads, evaluate_one);
    for (size_t m = 0; m < misses.size(); ++m) {
      XMLAC_RETURN_IF_ERROR(statuses[m]);
      for (size_t k : misses[m].positions) out[k] = computed[m];
    }
  }
  return out;
}

// Below this many 64-bit words the bitmap combination stays serial: a word
// op is ~1ns, so a shard must own hundreds of thousands of ids before the
// fan-out pays for its thread spawns.
constexpr size_t kBitmapShardMinWords = 2048;

// Word-range-parallel sign diff.  Word ranges own disjoint ascending id
// ranges, so per-range outputs concatenated in range order are exactly the
// serial DifferenceInto output.
void ShardedDifference(const NodeBitmap& a, const NodeBitmap& b,
                       const ShardConfig& shard,
                       std::vector<UniversalId>* out) {
  std::vector<ShardRange> ranges =
      PlanShards(a.word_count(), shard, kBitmapShardMinWords);
  if (ranges.size() <= 1) {
    a.DifferenceInto(b, out);
    return;
  }
  std::vector<std::vector<UniversalId>> parts(ranges.size());
  ParallelFor(ranges.size(), shard.ResolvedThreads(), 1, [&](size_t k) {
    a.DifferenceInto(b, &parts[k], ranges[k].begin, ranges[k].end);
  });
  for (const auto& part : parts) {
    out->insert(out->end(), part.begin(), part.end());
  }
}

// acc |= union of all scopes, word-range-parallel.  Each word has exactly
// one owning shard, so the concurrent ORs are race-free after EnsureWords.
void ShardedUnion(NodeBitmap* acc,
                  const std::vector<RuleScopeCache::BitmapPtr>& scopes,
                  const ShardConfig& shard) {
  size_t words = acc->word_count();
  for (const auto& s : scopes) words = std::max(words, s->word_count());
  acc->EnsureWords(words);
  auto combine_range = [&](size_t wb, size_t we) {
    for (const auto& s : scopes) acc->UnionRange(*s, wb, we);
  };
  std::vector<ShardRange> ranges =
      PlanShards(words, shard, kBitmapShardMinWords);
  if (ranges.size() <= 1) {
    combine_range(0, words);
    return;
  }
  ParallelFor(ranges.size(), shard.ResolvedThreads(), 1, [&](size_t k) {
    combine_range(ranges[k].begin, ranges[k].end);
  });
}

// The Fig. 5 / Table 2 combination over per-rule bitmaps: UNION of the
// base-effect scopes as word-wise OR, EXCEPT of the opposing scopes as
// word-wise AND-NOT.  Word-range partitioned: every word of base/minus is
// written by exactly one shard, and the EXCEPT subtracts only words its own
// shard fully built, so the sharded result is bit-identical to serial.
NodeBitmap CombineScopes(const policy::Policy& policy,
                         const std::vector<size_t>& subset,
                         const std::vector<RuleScopeCache::BitmapPtr>& scopes,
                         policy::CombineOp combine, size_t id_bound,
                         const ShardConfig& shard) {
  bool base_is_grant = combine == policy::CombineOp::kGrants ||
                       combine == policy::CombineOp::kGrantsExceptDenies;
  bool has_except = combine == policy::CombineOp::kGrantsExceptDenies ||
                    combine == policy::CombineOp::kDeniesExceptGrants;
  NodeBitmap base(id_bound);
  NodeBitmap minus(id_bound);
  size_t words = base.word_count();
  for (const auto& s : scopes) words = std::max(words, s->word_count());
  base.EnsureWords(words);
  minus.EnsureWords(words);
  auto combine_range = [&](size_t wb, size_t we) {
    for (size_t k = 0; k < subset.size(); ++k) {
      bool grant = policy.rules()[subset[k]].effect == policy::Effect::kAllow;
      if (grant == base_is_grant) {
        base.UnionRange(*scopes[k], wb, we);
      } else if (has_except) {
        minus.UnionRange(*scopes[k], wb, we);
      }
    }
    if (has_except) base.SubtractRange(minus, wb, we);
  };
  std::vector<ShardRange> ranges =
      PlanShards(words, shard, kBitmapShardMinWords);
  if (ranges.size() <= 1) {
    combine_range(0, words);
  } else {
    obs::ScopedSpan span("annotate.shard_combine");
    ParallelFor(ranges.size(), shard.ResolvedThreads(), 1, [&](size_t k) {
      combine_range(ranges[k].begin, ranges[k].end);
    });
    obs::IncrementCounter("annotator.shard.fanouts");
    obs::IncrementCounter("annotator.shard.shards", ranges.size());
    if (span.active()) {
      span.AddCount("shards", static_cast<int64_t>(ranges.size()));
    }
  }
  return base;
}

// Writes the signs so the store's non-default set becomes exactly
// `desired`.  With a valid SignState this is the bitmap diff — only changed
// ids are emitted; otherwise ResetAllSigns + full SetSigns, which also
// (re)establishes the state.  `affected` restricts which currently-marked
// ids may be cleared (null = all of them; Reannotate passes the triggered
// scopes' union so marks outside it survive).
Status ApplySigns(Backend* backend, char mark, char def,
                  const NodeBitmap& desired, const NodeBitmap* affected,
                  SignState* state, const ShardConfig& shard,
                  AnnotateStats* stats) {
  if (state != nullptr && state->valid && state->default_sign == def) {
    std::vector<UniversalId> to_default;
    std::vector<UniversalId> to_mark;
    if (affected != nullptr) {
      NodeBitmap current = state->marked;
      current.Intersect(*affected);
      ShardedDifference(current, desired, shard, &to_default);
    } else {
      ShardedDifference(state->marked, desired, shard, &to_default);
    }
    ShardedDifference(desired, state->marked, shard, &to_mark);
    {
      obs::ScopedSpan diff_span("annotate.sign_diff");
      XMLAC_RETURN_IF_ERROR(backend->SetSigns(to_default, def));
      XMLAC_RETURN_IF_ERROR(backend->SetSigns(to_mark, mark));
      if (diff_span.active()) {
        diff_span.AddCount("to_default",
                           static_cast<int64_t>(to_default.size()));
        diff_span.AddCount("to_mark", static_cast<int64_t>(to_mark.size()));
      }
    }
    obs::IncrementCounter("annotator.signs_diffed",
                          to_default.size() + to_mark.size());
    if (affected != nullptr) {
      state->marked.Subtract(*affected);
      state->marked.Union(desired);
    } else {
      state->marked = desired;
    }
    stats->reset = to_default.size();
    stats->marked = to_mark.size();
    return Status::OK();
  }

  // No usable diff state: wholesale write, then establish the state.  Only
  // a full-policy annotation may do this (affected == nullptr); a partial
  // re-annotation without state must not ResetAllSigns, so it resets just
  // the affected ids.
  if (affected == nullptr) {
    {
      obs::ScopedSpan reset_span("annotate.reset_signs");
      XMLAC_RETURN_IF_ERROR(backend->ResetAllSigns(def));
    }
    stats->reset = backend->NodeCount();
  } else {
    std::vector<UniversalId> to_reset = affected->ToIds();
    obs::ScopedSpan reset_span("annotate.reset_signs");
    XMLAC_RETURN_IF_ERROR(backend->SetSigns(to_reset, def));
    stats->reset = to_reset.size();
  }
  std::vector<UniversalId> marked = desired.ToIds();
  {
    obs::ScopedSpan mark_span("annotate.set_signs");
    XMLAC_RETURN_IF_ERROR(backend->SetSigns(marked, mark));
  }
  stats->marked = marked.size();
  if (state != nullptr) {
    if (affected == nullptr) {
      state->marked = desired;
      state->default_sign = def;
      state->valid = true;
    } else {
      // A partial write without usable state cannot reconstruct the full
      // marked set.
      state->valid = false;
    }
  }
  return Status::OK();
}

Result<AnnotateStats> AnnotateFullCached(Backend* backend,
                                         const policy::Policy& policy,
                                         AnnotationContext* ctx) {
  obs::ScopedSpan span("annotate.full");
  obs::ScopedTimer timer("annotate.full.elapsed_us");
  policy::AnnotationPlan plan =
      policy::PlanFor(policy.default_semantics(), policy.conflict_resolution());
  std::vector<size_t> all = AllRules(policy);
  XMLAC_ASSIGN_OR_RETURN(std::vector<RuleScopeCache::BitmapPtr> scopes,
                         RuleScopes(backend, policy, all, *ctx));
  NodeBitmap desired = CombineScopes(policy, all, scopes, plan.combine,
                                     backend->IdBound(), ctx->shard);
  AnnotateStats stats;
  stats.rules_used = policy.size();
  XMLAC_RETURN_IF_ERROR(ApplySigns(backend, MarkSign(plan),
                                   DefaultSign(policy), desired,
                                   /*affected=*/nullptr, ctx->sign_state,
                                   ctx->shard, &stats));
  obs::IncrementCounter("annotator.full_annotations");
  obs::IncrementCounter("annotator.nodes_marked", stats.marked);
  obs::IncrementCounter("annotator.nodes_reset", stats.reset);
  obs::IncrementCounter("annotator.rules_used", stats.rules_used);
  ReportSigned(MarkSign(plan), stats.marked);
  ReportSigned(DefaultSign(policy), stats.reset);
  if (span.active()) {
    span.AddCount("marked", static_cast<int64_t>(stats.marked));
    span.AddCount("rules", static_cast<int64_t>(stats.rules_used));
  }
  return stats;
}

Result<AnnotateStats> ReannotateCached(Backend* backend,
                                       const policy::Policy& policy,
                                       const std::vector<size_t>& triggered,
                                       const std::vector<UniversalId>& old_scope,
                                       AnnotationContext* ctx) {
  obs::ScopedSpan span("reannotate");
  obs::ScopedTimer timer("reannotate.elapsed_us");
  AnnotateStats stats;
  stats.rules_used = triggered.size();
  obs::IncrementCounter("annotator.reannotations");
  if (triggered.empty()) return stats;
  policy::AnnotationPlan plan =
      policy::PlanFor(policy.default_semantics(), policy.conflict_resolution());
  XMLAC_ASSIGN_OR_RETURN(std::vector<RuleScopeCache::BitmapPtr> scopes,
                         RuleScopes(backend, policy, triggered, *ctx));
  NodeBitmap desired = CombineScopes(policy, triggered, scopes, plan.combine,
                                     backend->IdBound(), ctx->shard);
  // Everything in a triggered scope before or after the update; only these
  // signs may change.
  NodeBitmap affected(backend->IdBound());
  ShardedUnion(&affected, scopes, ctx->shard);
  for (UniversalId id : old_scope) affected.Set(id);
  XMLAC_RETURN_IF_ERROR(ApplySigns(backend, MarkSign(plan),
                                   DefaultSign(policy), desired, &affected,
                                   ctx->sign_state, ctx->shard, &stats));
  obs::IncrementCounter("annotator.nodes_marked", stats.marked);
  obs::IncrementCounter("annotator.nodes_reset", stats.reset);
  obs::IncrementCounter("annotator.rules_used", stats.rules_used);
  ReportSigned(MarkSign(plan), stats.marked);
  ReportSigned(DefaultSign(policy), stats.reset);
  if (span.active()) {
    span.AddCount("marked", static_cast<int64_t>(stats.marked));
    span.AddCount("reset", static_cast<int64_t>(stats.reset));
    span.AddCount("rules", static_cast<int64_t>(stats.rules_used));
  }
  return stats;
}

}  // namespace

Result<AnnotateStats> AnnotateFull(Backend* backend,
                                   const policy::Policy& policy,
                                   AnnotationContext* ctx) {
  if (Cached(ctx)) return AnnotateFullCached(backend, policy, ctx);
  obs::ScopedSpan span("annotate.full");
  obs::ScopedTimer timer("annotate.full.elapsed_us");
  policy::AnnotationPlan plan =
      policy::PlanFor(policy.default_semantics(), policy.conflict_resolution());
  {
    obs::ScopedSpan reset_span("annotate.reset_signs");
    XMLAC_RETURN_IF_ERROR(backend->ResetAllSigns(DefaultSign(policy)));
  }
  std::vector<UniversalId> marked;
  {
    obs::ScopedSpan eval_span("annotate.evaluate_set");
    XMLAC_ASSIGN_OR_RETURN(
        marked,
        backend->EvaluateAnnotationSet(policy, AllRules(policy), plan.combine));
    if (eval_span.active()) {
      eval_span.AddCount("marked", static_cast<int64_t>(marked.size()));
    }
  }
  {
    obs::ScopedSpan mark_span("annotate.set_signs");
    XMLAC_RETURN_IF_ERROR(backend->SetSigns(marked, MarkSign(plan)));
  }
  AnnotateStats stats;
  stats.marked = marked.size();
  stats.reset = backend->NodeCount();
  stats.rules_used = policy.size();
  // A full wholesale annotation re-establishes diff state even when the
  // cache is off, so a later cached call can diff against it.
  if (ctx != nullptr && ctx->sign_state != nullptr) {
    ctx->sign_state->marked = NodeBitmap::FromIds(marked);
    ctx->sign_state->default_sign = DefaultSign(policy);
    ctx->sign_state->valid = true;
  }
  obs::IncrementCounter("annotator.full_annotations");
  obs::IncrementCounter("annotator.nodes_marked", stats.marked);
  obs::IncrementCounter("annotator.nodes_reset", stats.reset);
  obs::IncrementCounter("annotator.rules_used", stats.rules_used);
  ReportSigned(MarkSign(plan), stats.marked);
  ReportSigned(DefaultSign(policy),
               stats.reset >= stats.marked ? stats.reset - stats.marked : 0);
  if (span.active()) {
    span.AddCount("marked", static_cast<int64_t>(stats.marked));
    span.AddCount("rules", static_cast<int64_t>(stats.rules_used));
  }
  return stats;
}

Result<std::vector<UniversalId>> TriggeredScope(
    Backend* backend, const policy::Policy& policy,
    const std::vector<size_t>& triggered, const AnnotationContext* ctx) {
  obs::ScopedSpan span("triggered_scope");
  std::vector<UniversalId> out;
  if (Cached(ctx)) {
    XMLAC_ASSIGN_OR_RETURN(std::vector<RuleScopeCache::BitmapPtr> scopes,
                           RuleScopes(backend, policy, triggered, *ctx));
    NodeBitmap scope(backend->IdBound());
    ShardedUnion(&scope, scopes, ctx->shard);
    out = scope.ToIds();
  } else {
    std::unordered_set<UniversalId> scope;
    for (size_t i : triggered) {
      // Per-rule timing: one histogram sample per scope evaluation.
      obs::ScopedTimer rule_timer("annotator.rule_scope_us");
      XMLAC_ASSIGN_OR_RETURN(
          std::vector<UniversalId> ids,
          backend->EvaluateQuery(policy.rules()[i].resource));
      scope.insert(ids.begin(), ids.end());
    }
    out.assign(scope.begin(), scope.end());
    std::sort(out.begin(), out.end());
  }
  obs::IncrementCounter("annotator.scope_nodes", out.size());
  if (span.active()) {
    span.AddCount("rules", static_cast<int64_t>(triggered.size()));
    span.AddCount("scope_nodes", static_cast<int64_t>(out.size()));
  }
  return out;
}

Result<AnnotateStats> Reannotate(Backend* backend,
                                 const policy::Policy& policy,
                                 const std::vector<size_t>& triggered,
                                 const std::vector<UniversalId>& old_scope,
                                 AnnotationContext* ctx) {
  if (Cached(ctx)) {
    return ReannotateCached(backend, policy, triggered, old_scope, ctx);
  }
  obs::ScopedSpan span("reannotate");
  obs::ScopedTimer timer("reannotate.elapsed_us");
  AnnotateStats stats;
  stats.rules_used = triggered.size();
  obs::IncrementCounter("annotator.reannotations");
  if (triggered.empty()) return stats;
  policy::AnnotationPlan plan =
      policy::PlanFor(policy.default_semantics(), policy.conflict_resolution());

  // Nodes possibly affected: everything in a triggered scope before or
  // after the update.
  XMLAC_ASSIGN_OR_RETURN(std::vector<UniversalId> new_scope,
                         TriggeredScope(backend, policy, triggered));
  std::unordered_set<UniversalId> affected(old_scope.begin(),
                                           old_scope.end());
  affected.insert(new_scope.begin(), new_scope.end());
  std::vector<UniversalId> to_reset(affected.begin(), affected.end());
  std::sort(to_reset.begin(), to_reset.end());
  {
    obs::ScopedSpan reset_span("annotate.reset_signs");
    XMLAC_RETURN_IF_ERROR(backend->SetSigns(to_reset, DefaultSign(policy)));
  }
  stats.reset = to_reset.size();

  // Re-mark per the Fig. 5 plan restricted to the triggered rules.
  std::vector<UniversalId> marked;
  {
    obs::ScopedSpan eval_span("annotate.evaluate_set");
    XMLAC_ASSIGN_OR_RETURN(
        marked,
        backend->EvaluateAnnotationSet(policy, triggered, plan.combine));
  }
  {
    obs::ScopedSpan mark_span("annotate.set_signs");
    XMLAC_RETURN_IF_ERROR(backend->SetSigns(marked, MarkSign(plan)));
  }
  stats.marked = marked.size();
  // The uncached partial path invalidates any diff state: it cannot cheaply
  // reconstruct the full post-update marked set.
  if (ctx != nullptr && ctx->sign_state != nullptr) {
    ctx->sign_state->valid = false;
  }
  obs::IncrementCounter("annotator.nodes_marked", stats.marked);
  obs::IncrementCounter("annotator.nodes_reset", stats.reset);
  obs::IncrementCounter("annotator.rules_used", stats.rules_used);
  ReportSigned(MarkSign(plan), stats.marked);
  ReportSigned(DefaultSign(policy),
               stats.reset >= stats.marked ? stats.reset - stats.marked : 0);
  if (span.active()) {
    span.AddCount("marked", static_cast<int64_t>(stats.marked));
    span.AddCount("reset", static_cast<int64_t>(stats.reset));
    span.AddCount("rules", static_cast<int64_t>(stats.rules_used));
  }
  return stats;
}

}  // namespace xmlac::engine
