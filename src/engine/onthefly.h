#ifndef XMLAC_ENGINE_ONTHEFLY_H_
#define XMLAC_ENGINE_ONTHEFLY_H_

// On-the-fly enforcement baseline (the approach of Tan/Lee et al. [23] the
// paper contrasts its materialized annotations with): no signs are stored;
// every request re-evaluates the policy over the current document to decide
// accessibility.  Correct by construction and update-friendly (nothing to
// re-annotate), but each request pays the full policy-evaluation cost —
// the trade-off bench_baseline_onthefly quantifies.

#include "engine/requester.h"
#include "policy/policy.h"
#include "xml/document.h"

namespace xmlac::engine {

class OnTheFlyRequester {
 public:
  explicit OnTheFlyRequester(policy::Policy policy)
      : policy_(std::move(policy)) {}

  const policy::Policy& policy() const { return policy_; }

  // All-or-nothing request against an *unannotated* document: evaluates the
  // query, then evaluates every policy rule to decide each selected node's
  // accessibility.
  Result<RequestOutcome> Request(const xml::Document& doc,
                                 const xpath::Path& query) const;

 private:
  policy::Policy policy_;
};

}  // namespace xmlac::engine

#endif  // XMLAC_ENGINE_ONTHEFLY_H_
