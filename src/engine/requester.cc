#include "engine/requester.h"

namespace xmlac::engine {

Result<RequestOutcome> Request(Backend* backend, const xpath::Path& query) {
  XMLAC_ASSIGN_OR_RETURN(std::vector<UniversalId> ids,
                         backend->EvaluateQuery(query));
  RequestOutcome outcome;
  outcome.selected = ids.size();
  for (UniversalId id : ids) {
    XMLAC_ASSIGN_OR_RETURN(char sign, backend->GetSign(id));
    if (sign == '+') ++outcome.accessible;
  }
  if (outcome.accessible != outcome.selected) {
    return Status::AccessDenied(
        std::to_string(outcome.selected - outcome.accessible) + " of " +
        std::to_string(outcome.selected) +
        " requested nodes are inaccessible");
  }
  outcome.granted = true;
  outcome.ids = std::move(ids);
  return outcome;
}

}  // namespace xmlac::engine
