#include "engine/requester.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlac::engine {

Result<RequestOutcome> Request(Backend* backend, const xpath::Path& query) {
  obs::ScopedSpan span("request");
  obs::ScopedTimer timer("requester.elapsed_us");
  obs::IncrementCounter("requester.requests");
  XMLAC_ASSIGN_OR_RETURN(std::vector<UniversalId> ids,
                         backend->EvaluateQuery(query));
  RequestOutcome outcome;
  outcome.selected = ids.size();
  {
    obs::ScopedSpan check_span("request.sign_check");
    for (UniversalId id : ids) {
      XMLAC_ASSIGN_OR_RETURN(char sign, backend->GetSign(id));
      if (sign == '+') ++outcome.accessible;
    }
  }
  obs::IncrementCounter("requester.nodes_selected", outcome.selected);
  obs::IncrementCounter("requester.nodes_accessible", outcome.accessible);
  if (span.active()) {
    span.AddCount("selected", static_cast<int64_t>(outcome.selected));
    span.AddCount("accessible", static_cast<int64_t>(outcome.accessible));
  }
  if (outcome.accessible != outcome.selected) {
    obs::IncrementCounter("requester.denied");
    return Status::AccessDenied(
        std::to_string(outcome.selected - outcome.accessible) + " of " +
        std::to_string(outcome.selected) +
        " requested nodes are inaccessible");
  }
  obs::IncrementCounter("requester.granted");
  outcome.granted = true;
  outcome.ids = std::move(ids);
  return outcome;
}

}  // namespace xmlac::engine
