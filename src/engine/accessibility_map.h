#ifndef XMLAC_ENGINE_ACCESSIBILITY_MAP_H_
#define XMLAC_ENGINE_ACCESSIBILITY_MAP_H_

// Compressed accessibility map (after Yu et al., TODS 29(2) — the
// annotation-storage technique the paper's related work contrasts with).
//
// Instead of one sign per node, accessibility is inheritance-coded: a
// marker is stored only where a node's accessibility differs from its
// parent's effective value (the virtual super-root is inaccessible).
// Lookup walks to the nearest marked ancestor — O(depth) instead of O(1),
// against storage proportional to the number of accessibility *boundaries*
// rather than nodes.  bench_ablation_cam quantifies the trade-off that
// presumably led the paper to plain signs.

#include <unordered_map>

#include "policy/semantics.h"
#include "xml/document.h"

namespace xmlac::engine {

class CompressedAccessibilityMap {
 public:
  // Builds the map for `accessible` (element nodes) over `doc`.
  static CompressedAccessibilityMap Build(const xml::Document& doc,
                                          const policy::NodeSet& accessible);

  // Accessibility of `n` (alive element nodes; dead nodes return false).
  bool IsAccessible(const xml::Document& doc, xml::NodeId n) const;

  // Stored markers (accessibility boundaries).
  size_t marker_count() const { return markers_.size(); }

  // Approximate in-memory footprint of the marker table.
  size_t ApproxBytes() const {
    return markers_.size() * (sizeof(xml::NodeId) + sizeof(bool) +
                              2 * sizeof(void*));
  }

 private:
  // node -> accessibility, present only where it differs from the
  // inherited value.
  std::unordered_map<xml::NodeId, bool> markers_;
};

}  // namespace xmlac::engine

#endif  // XMLAC_ENGINE_ACCESSIBILITY_MAP_H_
