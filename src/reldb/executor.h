#ifndef XMLAC_RELDB_EXECUTOR_H_
#define XMLAC_RELDB_EXECUTOR_H_

// Query executor.
//
// SELECT evaluation is a left-deep join in FROM order.  Equi-join conjuncts
// (a.x = b.y) drive hash joins; single-table conjuncts are pushed to the
// scans; everything else is evaluated as a residual filter.  UNION/EXCEPT
// apply set semantics.  UPDATE/DELETE use a table's hash index when the
// WHERE clause contains an indexed `col = literal` conjunct — the fast path
// for the annotation loop's per-tuple sign updates.

#include <string>
#include <string_view>
#include <vector>

#include "common/shard.h"
#include "common/status.h"
#include "reldb/catalog.h"
#include "reldb/query.h"
#include "reldb/sql_parser.h"

namespace xmlac::reldb {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  // Convenience for the id-list results of annotation queries.
  std::vector<int64_t> IdColumn() const;
  std::string ToString() const;  // aligned debug table
};

struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_output = 0;
  uint64_t statements = 0;
  uint64_t index_hits = 0;
};

class Executor {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  // The four statement entry points below also report per-operator metrics
  // (rows scanned/output, statements, index hits as counters; elapsed time
  // as reldb.{select,insert,update,delete}_us histograms) into the current
  // obs registry, once per top-level call.
  Result<ResultSet> ExecuteSelect(const CompoundSelect& q);
  // Returns the number of affected rows.
  Result<size_t> ExecuteInsert(const InsertStatement& st);
  Result<size_t> ExecuteUpdate(const UpdateStatement& st);
  Result<size_t> ExecuteDelete(const DeleteStatement& st);

  // Dispatch; DDL returns an empty result set.
  Result<ResultSet> Execute(const Statement& st);

  // Parse + execute one statement.
  Result<ResultSet> Query(std::string_view sql);

  // Human-readable physical plan of a select, e.g.
  //   SCAN patient AS pat1 (3 rows)
  //   HASH JOIN treatment AS treat1 ON pat1.id = treat1.pid (2 rows)
  //     FILTER treat1.s = '+'
  //   UNION
  //     SCAN regular AS regular1 (1 rows)
  Result<std::string> ExplainSelect(const CompoundSelect& q);

  // Parse + execute a ';'-separated script, discarding result sets.
  Status Run(std::string_view script);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

  // Shard-parallel seed scans (common/shard.h): a SELECT's slot-0 scan
  // splits into contiguous row ranges evaluated on ParallelFor workers and
  // merged in range order — identical tuples, same scan order.  ExecStats
  // accumulate after the join, so the totals match the serial path.  Only
  // affects queries on this executor; per-statement point lookups are
  // untouched.  Not thread-safe against in-flight statements.
  void set_shard_config(const ShardConfig& shard) { shard_ = shard; }

 private:
  // Recursive compound-select evaluation; metrics flush happens only in the
  // public ExecuteSelect wrapper so nested set operands are not double-counted.
  Result<ResultSet> ExecuteCompound(const CompoundSelect& q);
  Result<ResultSet> ExecuteSingleSelect(const SelectQuery& q);

  Catalog* catalog_;
  ExecStats stats_;
  ShardConfig shard_;
};

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_EXECUTOR_H_
