#ifndef XMLAC_RELDB_VALUE_H_
#define XMLAC_RELDB_VALUE_H_

// Typed values for the relational engine.

#include <cstdint>
#include <string>
#include <variant>

namespace xmlac::reldb {

enum class ValueType : uint8_t {
  kNull,
  kInt64,
  kDouble,
  kString,
};

std::string_view ValueTypeName(ValueType t);

// A SQL value.  NULL compares like SQL: any comparison with NULL is false
// (we do not model three-valued logic beyond that; the shredded workload
// only produces NULLs in the root tuple's pid).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return type() == ValueType::kInt64
               ? static_cast<double>(std::get<int64_t>(v_))
               : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  // SQL display form: NULL, 42, 4.2, abc (unquoted).
  std::string ToString() const;

  // SQL literal form: NULL, 42, 4.2, 'abc' (quotes escaped by doubling).
  std::string ToSqlLiteral() const;

  // Equality: null != anything (including null).  Numeric types compare by
  // value across int/double; numbers never equal strings.
  bool SqlEquals(const Value& other) const;

  // Three-way comparison for ORDER/set operations; total order with
  // NULL < numbers < strings (used for set semantics, not SQL comparison).
  int TotalCompare(const Value& other) const;

  // SQL ordering comparison: writes -1/0/+1 and returns true, or returns
  // false when either side is NULL, an empty string, or the types are
  // incomparable.
  // (int/double compare numerically; strings lexicographically; a string
  // that parses as a number compares numerically with numbers, matching the
  // loose typing of shredded XML text values.)
  bool SqlCompare(const Value& other, int* cmp) const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.TotalCompare(b) == 0;
  }

 private:
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> v_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_VALUE_H_
