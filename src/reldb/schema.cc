#include "reldb/schema.h"

namespace xmlac::reldb {

std::string TableSchema::ToCreateSql() const {
  std::string out = "CREATE TABLE " + name_ + " (";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    switch (columns_[i].type) {
      case ValueType::kInt64:
        out += "INT";
        break;
      case ValueType::kDouble:
        out += "REAL";
        break;
      default:
        out += "TEXT";
        break;
    }
  }
  out += ");";
  return out;
}

}  // namespace xmlac::reldb
