#include "reldb/expr.h"

namespace xmlac::reldb {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string alias, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = ColumnRef{std::move(alias), std::move(column)};
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kComparison;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAnd;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOr;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(inner));
  return e;
}

ExprPtr Expr::IsNull(ExprPtr inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->children.push_back(std::move(inner));
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->op = op;
  for (const ExprPtr& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return column.alias.empty() ? column.column
                                  : column.alias + "." + column.column;
    case ExprKind::kComparison:
      return children[0]->ToString() + " " +
             std::string(CompareOpName(op)) + " " + children[1]->ToString();
    case ExprKind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children[0]->ToString() + " OR " + children[1]->ToString() +
             ")";
    case ExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case ExprKind::kIsNull:
      return children[0]->ToString() + " IS NULL";
  }
  return "?";
}

void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kAnd) {
    CollectConjuncts(*e.children[0], out);
    CollectConjuncts(*e.children[1], out);
  } else {
    out->push_back(&e);
  }
}

}  // namespace xmlac::reldb
