#ifndef XMLAC_RELDB_CATALOG_H_
#define XMLAC_RELDB_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/table.h"

namespace xmlac::reldb {

// The database catalog: owns all tables of one database instance.  Every
// table created through a catalog shares its storage kind (the catalog *is*
// the engine flavour: row-store database vs column-store database).
class Catalog {
 public:
  explicit Catalog(StorageKind kind) : kind_(kind) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  StorageKind storage_kind() const { return kind_; }

  Result<Table*> CreateTable(TableSchema schema);
  Status DropTable(std::string_view name);

  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

  // Sum of alive rows over all tables.
  size_t TotalRows() const;

  void Clear() { tables_.clear(); }

 private:
  StorageKind kind_;
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_CATALOG_H_
