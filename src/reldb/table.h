#ifndef XMLAC_RELDB_TABLE_H_
#define XMLAC_RELDB_TABLE_H_

// Table storage.  Two physical layouts implement one logical interface:
//
//  * RowStoreTable    — row-major (std::vector of rows); analog of the
//                       paper's PostgreSQL backend.
//  * ColumnStoreTable — column-major (one std::vector per column); analog
//                       of the paper's MonetDB/SQL backend.
//
// Rows are addressed by a stable RowIdx; deletions tombstone.  The layouts
// differ in their real memory-access patterns (single-column scans touch
// contiguous memory in the column store, whole-row access is one indexed
// load in the row store), which is what the loading/annotation benchmarks
// measure.

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "reldb/schema.h"

namespace xmlac::reldb {

using RowIdx = size_t;

enum class StorageKind : uint8_t {
  kRowStore,
  kColumnStore,
};

class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}
  virtual ~Table() = default;

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  virtual StorageKind storage_kind() const = 0;

  // Appends a row; the row must have exactly num_columns values.
  virtual Result<RowIdx> Insert(Row row) = 0;

  // Slots ever allocated (iteration bound), and currently alive rows.
  virtual size_t Capacity() const = 0;
  virtual size_t AliveCount() const = 0;
  virtual bool IsAlive(RowIdx idx) const = 0;

  virtual Value GetValue(RowIdx idx, size_t col) const = 0;
  virtual void SetValue(RowIdx idx, size_t col, Value v) = 0;
  virtual void DeleteRow(RowIdx idx) = 0;

  // Materializes a full row (alive rows only).
  Row GetRow(RowIdx idx) const;

  // --- Hash index support ------------------------------------------------
  // A table may carry persistent equality indexes on single columns,
  // maintained across inserts/updates/deletes.  Used for the point UPDATEs
  // of the annotation loop (WHERE id = ...).
  Status CreateIndex(std::string_view column);
  bool HasIndex(size_t col) const;
  // Row indices whose `col` equals `v` (empty when no index; callers must
  // check HasIndex first).
  std::vector<RowIdx> IndexLookup(size_t col, const Value& v) const;

 protected:
  // Subclasses call these around every mutation to keep indexes fresh.
  void IndexOnInsert(RowIdx idx, const Row& row);
  void IndexOnUpdate(RowIdx idx, size_t col, const Value& old_v,
                     const Value& new_v);
  void IndexOnDelete(RowIdx idx);

  TableSchema schema_;

 private:
  // column -> (value -> row indices)
  std::unordered_map<size_t,
                     std::unordered_map<Value, std::vector<RowIdx>, ValueHash>>
      indexes_;
};

// Row-major layout: tuples live contiguously in one flat arena with stride
// num_columns, so inserting or reading a tuple touches a single memory
// region (the classic heap-file access pattern).
class RowStoreTable final : public Table {
 public:
  explicit RowStoreTable(TableSchema schema)
      : Table(std::move(schema)), stride_(schema_.num_columns()) {}

  StorageKind storage_kind() const override { return StorageKind::kRowStore; }
  Result<RowIdx> Insert(Row row) override;
  size_t Capacity() const override { return valid_.size(); }
  size_t AliveCount() const override { return alive_; }
  bool IsAlive(RowIdx idx) const override {
    return idx < valid_.size() && valid_[idx];
  }
  Value GetValue(RowIdx idx, size_t col) const override {
    return flat_[idx * stride_ + col];
  }
  void SetValue(RowIdx idx, size_t col, Value v) override;
  void DeleteRow(RowIdx idx) override;

 private:
  size_t stride_;
  std::vector<Value> flat_;
  std::vector<uint8_t> valid_;
  size_t alive_ = 0;
};

class ColumnStoreTable final : public Table {
 public:
  explicit ColumnStoreTable(TableSchema schema) : Table(std::move(schema)) {
    columns_.resize(schema_.num_columns());
  }

  StorageKind storage_kind() const override {
    return StorageKind::kColumnStore;
  }
  Result<RowIdx> Insert(Row row) override;
  size_t Capacity() const override {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t AliveCount() const override { return alive_; }
  bool IsAlive(RowIdx idx) const override {
    return idx < valid_.size() && valid_[idx];
  }
  Value GetValue(RowIdx idx, size_t col) const override {
    return columns_[col][idx];
  }
  void SetValue(RowIdx idx, size_t col, Value v) override;
  void DeleteRow(RowIdx idx) override;

  // Direct read-only access to one column (vectorized scans).
  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

 private:
  std::vector<std::vector<Value>> columns_;
  std::vector<uint8_t> valid_;
  size_t alive_ = 0;
};

// Factory keyed on the storage kind.
std::unique_ptr<Table> MakeTable(TableSchema schema, StorageKind kind);

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_TABLE_H_
