#ifndef XMLAC_RELDB_SQL_PARSER_H_
#define XMLAC_RELDB_SQL_PARSER_H_

// Parser for the SQL dialect used by the shredder and the annotation
// pipeline:
//
//   CREATE TABLE patient (id INT, pid INT, v TEXT, s TEXT);
//   INSERT INTO patient VALUES (4, 2, NULL, '-');
//   INSERT INTO patient (id, pid, s) VALUES (4, 2, '-'), (11, 9, '-');
//   SELECT p.id FROM patients ps, patient p WHERE ps.id = p.pid;
//   SELECT ... UNION SELECT ... EXCEPT (SELECT ... UNION SELECT ...);
//   UPDATE patient SET s = '+' WHERE id = 4;
//   DELETE FROM patient WHERE pid = 9;
//
// Keywords are case-insensitive; identifiers are case-sensitive.

#include <string_view>
#include <vector>

#include "common/status.h"
#include "reldb/query.h"

namespace xmlac::reldb {

// Parses a single statement (trailing ';' optional).
Result<Statement> ParseSql(std::string_view sql);

// Parses a ';'-separated script (e.g. a shredded-document INSERT file).
Result<std::vector<Statement>> ParseSqlScript(std::string_view sql);

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_SQL_PARSER_H_
