#include "reldb/sql_parser.h"

#include <cctype>
#include <cstdlib>

namespace xmlac::reldb {
namespace {

enum class TokKind : uint8_t {
  kIdent,
  kNumber,
  kString,
  kOp,     // = <> != < <= > >=
  kPunct,  // ( ) , . ; *
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (original case), op or punct spelling
  std::string upper;  // uppercased identifier for keyword checks
  Value value;        // kNumber / kString payload
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWsAndComments();
      Token t;
      t.offset = pos_;
      if (pos_ >= text_.size()) {
        t.kind = TokKind::kEnd;
        out.push_back(std::move(t));
        return out;
      }
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        t.kind = TokKind::kIdent;
        t.text = std::string(text_.substr(start, pos_ - start));
        t.upper = t.text;
        for (char& ch : t.upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 ((c == '-' || c == '+') && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t start = pos_;
        if (c == '-' || c == '+') ++pos_;
        bool is_real = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
          if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
            is_real = true;
          }
          ++pos_;
        }
        std::string num(text_.substr(start, pos_ - start));
        t.kind = TokKind::kNumber;
        t.text = num;
        t.value = is_real ? Value::Real(std::strtod(num.c_str(), nullptr))
                          : Value::Int(std::strtoll(num.c_str(), nullptr, 10));
      } else if (c == '\'') {
        ++pos_;
        std::string s;
        while (true) {
          if (pos_ >= text_.size()) {
            return Status::ParseError("SQL: unterminated string literal");
          }
          if (text_[pos_] == '\'') {
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
              s.push_back('\'');
              pos_ += 2;
              continue;
            }
            ++pos_;
            break;
          }
          s.push_back(text_[pos_]);
          ++pos_;
        }
        t.kind = TokKind::kString;
        t.value = Value::Str(std::move(s));
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        size_t start = pos_;
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '=' || (c == '<' && text_[pos_] == '>'))) {
          ++pos_;
        }
        t.kind = TokKind::kOp;
        t.text = std::string(text_.substr(start, pos_ - start));
        if (t.text == "!") {
          return Status::ParseError("SQL: stray '!'");
        }
      } else if (c == '(' || c == ')' || c == ',' || c == '.' || c == ';' ||
                 c == '*') {
        t.kind = TokKind::kPunct;
        t.text = std::string(1, c);
        ++pos_;
      } else {
        return Status::ParseError(std::string("SQL: unexpected character '") +
                                  c + "' at offset " + std::to_string(pos_));
      }
      out.push_back(std::move(t));
    }
  }

 private:
  void SkipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class SqlParser {
 public:
  explicit SqlParser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    XMLAC_ASSIGN_OR_RETURN(Statement st, ParseOne());
    Eat(";");
    if (!AtEnd()) return Err("trailing tokens after statement");
    return st;
  }

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (Eat(";")) continue;
      XMLAC_ASSIGN_OR_RETURN(Statement st, ParseOne());
      out.push_back(std::move(st));
      if (!AtEnd() && !Eat(";")) return Err("expected ';' between statements");
    }
    return out;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool AtEnd() const { return Cur().kind == TokKind::kEnd; }

  bool IsKeyword(std::string_view kw) const {
    return Cur().kind == TokKind::kIdent && Cur().upper == kw;
  }
  bool EatKeyword(std::string_view kw) {
    if (IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Is(std::string_view text) const {
    return (Cur().kind == TokKind::kPunct || Cur().kind == TokKind::kOp) &&
           Cur().text == text;
  }
  bool Eat(std::string_view text) {
    if (Is(text)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(std::string msg) const {
    return Status::ParseError("SQL, offset " + std::to_string(Cur().offset) +
                              ": " + std::move(msg));
  }

  Result<std::string> ExpectIdent(std::string what) {
    if (Cur().kind != TokKind::kIdent) return Err("expected " + what);
    std::string s = Cur().text;
    ++pos_;
    return s;
  }

  Status Expect(std::string_view text) {
    if (!Eat(text)) return Err("expected '" + std::string(text) + "'");
    return Status::OK();
  }

  Result<Statement> ParseOne() {
    Statement st;
    if (IsKeyword("SELECT") || Is("(")) {
      st.kind = Statement::Kind::kSelect;
      XMLAC_ASSIGN_OR_RETURN(st.select, ParseCompound());
      return st;
    }
    if (EatKeyword("INSERT")) {
      st.kind = Statement::Kind::kInsert;
      XMLAC_ASSIGN_OR_RETURN(st.insert, ParseInsert());
      return st;
    }
    if (EatKeyword("UPDATE")) {
      st.kind = Statement::Kind::kUpdate;
      XMLAC_ASSIGN_OR_RETURN(st.update, ParseUpdate());
      return st;
    }
    if (EatKeyword("DELETE")) {
      st.kind = Statement::Kind::kDelete;
      XMLAC_ASSIGN_OR_RETURN(st.del, ParseDelete());
      return st;
    }
    if (EatKeyword("CREATE")) {
      st.kind = Statement::Kind::kCreateTable;
      XMLAC_ASSIGN_OR_RETURN(st.create, ParseCreate());
      return st;
    }
    return Err("expected SELECT/INSERT/UPDATE/DELETE/CREATE");
  }

  // compound := unit ((UNION | EXCEPT) unit)*
  // unit     := select | '(' compound ')'
  Result<CompoundSelect> ParseCompound() {
    CompoundSelect out;
    XMLAC_ASSIGN_OR_RETURN(CompoundSelect first, ParseUnit());
    // Flatten a parenthesised leading unit when it has no tail.
    out = std::move(first);
    while (true) {
      CompoundSelect::SetOp op;
      if (EatKeyword("UNION")) {
        op = CompoundSelect::SetOp::kUnion;
      } else if (EatKeyword("EXCEPT")) {
        op = CompoundSelect::SetOp::kExcept;
      } else {
        break;
      }
      XMLAC_ASSIGN_OR_RETURN(CompoundSelect rhs, ParseUnit());
      out.rest.emplace_back(op, std::move(rhs));
    }
    return out;
  }

  Result<CompoundSelect> ParseUnit() {
    if (Eat("(")) {
      XMLAC_ASSIGN_OR_RETURN(CompoundSelect inner, ParseCompound());
      XMLAC_RETURN_IF_ERROR(Expect(")"));
      return inner;
    }
    if (!EatKeyword("SELECT")) return Err("expected SELECT");
    CompoundSelect out;
    XMLAC_ASSIGN_OR_RETURN(out.first, ParseSelectBody());
    return out;
  }

  Result<SelectQuery> ParseSelectBody() {
    SelectQuery q;
    q.distinct = EatKeyword("DISTINCT");
    if (EatKeyword("COUNT")) {
      XMLAC_RETURN_IF_ERROR(Expect("("));
      XMLAC_RETURN_IF_ERROR(Expect("*"));
      XMLAC_RETURN_IF_ERROR(Expect(")"));
      q.count_star = true;
    } else {
      // Select list: alias.col | col, comma separated.
      while (true) {
        XMLAC_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        q.select.push_back(std::move(ref));
        if (!Eat(",")) break;
      }
    }
    if (!EatKeyword("FROM")) return Err("expected FROM");
    while (true) {
      TableRef tr;
      XMLAC_ASSIGN_OR_RETURN(tr.table, ExpectIdent("table name"));
      if (Cur().kind == TokKind::kIdent && !IsReservedTail()) {
        tr.alias = Cur().text;
        ++pos_;
      }
      q.from.push_back(std::move(tr));
      if (!Eat(",")) break;
    }
    if (EatKeyword("WHERE")) {
      XMLAC_ASSIGN_OR_RETURN(q.where, ParseOrExpr());
    }
    if (EatKeyword("ORDER")) {
      if (!EatKeyword("BY")) return Err("expected BY after ORDER");
      while (true) {
        OrderTerm term;
        XMLAC_ASSIGN_OR_RETURN(term.column, ParseColumnRef());
        if (EatKeyword("DESC")) {
          term.descending = true;
        } else {
          (void)EatKeyword("ASC");
        }
        q.order_by.push_back(std::move(term));
        if (!Eat(",")) break;
      }
    }
    if (EatKeyword("LIMIT")) {
      if (Cur().kind != TokKind::kNumber ||
          Cur().value.type() != ValueType::kInt64 ||
          Cur().value.AsInt() < 0) {
        return Err("LIMIT requires a non-negative integer");
      }
      q.limit = static_cast<size_t>(Cur().value.AsInt());
      ++pos_;
    }
    return q;
  }

  // Keywords that may directly follow a table ref and thus are not aliases.
  bool IsReservedTail() const {
    return Cur().upper == "WHERE" || Cur().upper == "UNION" ||
           Cur().upper == "EXCEPT" || Cur().upper == "ORDER" ||
           Cur().upper == "LIMIT";
  }

  Result<ColumnRef> ParseColumnRef() {
    ColumnRef ref;
    XMLAC_ASSIGN_OR_RETURN(std::string first, ExpectIdent("column"));
    if (Eat(".")) {
      ref.alias = std::move(first);
      XMLAC_ASSIGN_OR_RETURN(ref.column, ExpectIdent("column"));
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  Result<ExprPtr> ParseOrExpr() {
    XMLAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (EatKeyword("OR")) {
      XMLAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAndExpr() {
    XMLAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    while (EatKeyword("AND")) {
      XMLAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParsePrimary() {
    if (EatKeyword("NOT")) {
      XMLAC_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
      return Expr::Not(std::move(inner));
    }
    if (Eat("(")) {
      XMLAC_ASSIGN_OR_RETURN(ExprPtr inner, ParseOrExpr());
      XMLAC_RETURN_IF_ERROR(Expect(")"));
      return inner;
    }
    XMLAC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
    if (EatKeyword("IS")) {
      bool negated = EatKeyword("NOT");
      if (!EatKeyword("NULL")) return Err("expected NULL after IS");
      ExprPtr e = Expr::IsNull(std::move(lhs));
      return negated ? Expr::Not(std::move(e)) : std::move(e);
    }
    CompareOp op;
    if (Eat("=")) {
      op = CompareOp::kEq;
    } else if (Eat("<>") || Eat("!=")) {
      op = CompareOp::kNe;
    } else if (Eat("<=")) {
      op = CompareOp::kLe;
    } else if (Eat(">=")) {
      op = CompareOp::kGe;
    } else if (Eat("<")) {
      op = CompareOp::kLt;
    } else if (Eat(">")) {
      op = CompareOp::kGt;
    } else {
      return Err("expected a comparison operator");
    }
    XMLAC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
    return Expr::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseOperand() {
    if (Cur().kind == TokKind::kNumber || Cur().kind == TokKind::kString) {
      Value v = Cur().value;
      ++pos_;
      return Expr::Literal(std::move(v));
    }
    if (IsKeyword("NULL")) {
      ++pos_;
      return Expr::Literal(Value::Null());
    }
    if (Cur().kind == TokKind::kIdent) {
      XMLAC_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      return Expr::Column(std::move(ref.alias), std::move(ref.column));
    }
    return Err("expected literal or column reference");
  }

  Result<Value> ParseLiteralValue() {
    if (Cur().kind == TokKind::kNumber || Cur().kind == TokKind::kString) {
      Value v = Cur().value;
      ++pos_;
      return v;
    }
    if (EatKeyword("NULL")) return Value::Null();
    return Err("expected a literal value");
  }

  Result<InsertStatement> ParseInsert() {
    InsertStatement ins;
    if (!EatKeyword("INTO")) return Err("expected INTO");
    XMLAC_ASSIGN_OR_RETURN(ins.table, ExpectIdent("table name"));
    if (Eat("(")) {
      while (true) {
        XMLAC_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        ins.columns.push_back(std::move(col));
        if (Eat(")")) break;
        XMLAC_RETURN_IF_ERROR(Expect(","));
      }
    }
    if (!EatKeyword("VALUES")) return Err("expected VALUES");
    while (true) {
      XMLAC_RETURN_IF_ERROR(Expect("("));
      Row row;
      while (true) {
        XMLAC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (Eat(")")) break;
        XMLAC_RETURN_IF_ERROR(Expect(","));
      }
      ins.rows.push_back(std::move(row));
      if (!Eat(",")) break;
    }
    return ins;
  }

  Result<UpdateStatement> ParseUpdate() {
    UpdateStatement up;
    XMLAC_ASSIGN_OR_RETURN(up.table, ExpectIdent("table name"));
    if (!EatKeyword("SET")) return Err("expected SET");
    while (true) {
      XMLAC_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      XMLAC_RETURN_IF_ERROR(Expect("="));
      XMLAC_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      up.assignments.emplace_back(std::move(col), std::move(v));
      if (!Eat(",")) break;
    }
    if (EatKeyword("WHERE")) {
      XMLAC_ASSIGN_OR_RETURN(up.where, ParseOrExpr());
    }
    return up;
  }

  Result<DeleteStatement> ParseDelete() {
    DeleteStatement del;
    if (!EatKeyword("FROM")) return Err("expected FROM");
    XMLAC_ASSIGN_OR_RETURN(del.table, ExpectIdent("table name"));
    if (EatKeyword("WHERE")) {
      XMLAC_ASSIGN_OR_RETURN(del.where, ParseOrExpr());
    }
    return del;
  }

  Result<CreateTableStatement> ParseCreate() {
    if (!EatKeyword("TABLE")) return Err("expected TABLE");
    XMLAC_ASSIGN_OR_RETURN(std::string name, ExpectIdent("table name"));
    XMLAC_RETURN_IF_ERROR(Expect("("));
    std::vector<ColumnDef> cols;
    while (true) {
      ColumnDef col;
      XMLAC_ASSIGN_OR_RETURN(col.name, ExpectIdent("column name"));
      XMLAC_ASSIGN_OR_RETURN(std::string type, ExpectIdent("column type"));
      for (char& ch : type) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (type == "INT" || type == "INTEGER" || type == "BIGINT") {
        col.type = ValueType::kInt64;
      } else if (type == "REAL" || type == "DOUBLE" || type == "FLOAT") {
        col.type = ValueType::kDouble;
      } else if (type == "TEXT" || type == "VARCHAR" || type == "CHAR") {
        col.type = ValueType::kString;
      } else {
        return Err("unknown column type '" + type + "'");
      }
      // Optional length suffix: VARCHAR(32).
      if (Eat("(")) {
        if (Cur().kind != TokKind::kNumber) return Err("expected length");
        ++pos_;
        XMLAC_RETURN_IF_ERROR(Expect(")"));
      }
      cols.push_back(std::move(col));
      if (Eat(")")) break;
      XMLAC_RETURN_IF_ERROR(Expect(","));
    }
    CreateTableStatement create;
    create.schema = TableSchema(std::move(name), std::move(cols));
    return create;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view sql) {
  XMLAC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(sql).Run());
  return SqlParser(std::move(toks)).ParseStatement();
}

Result<std::vector<Statement>> ParseSqlScript(std::string_view sql) {
  XMLAC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(sql).Run());
  return SqlParser(std::move(toks)).ParseScript();
}

}  // namespace xmlac::reldb
