#ifndef XMLAC_RELDB_EXPR_H_
#define XMLAC_RELDB_EXPR_H_

// Scalar expressions for WHERE clauses.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/schema.h"

namespace xmlac::reldb {

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kIsNull,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpName(CompareOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// A column reference `alias.column` (alias may be empty when the query has a
// single unaliased table).  Binding (slot/col resolution) happens in the
// executor.
struct ColumnRef {
  std::string alias;
  std::string column;
};

struct Expr {
  ExprKind kind;
  // kLiteral
  Value literal;
  // kColumnRef
  ColumnRef column;
  // kComparison
  CompareOp op = CompareOp::kEq;
  // children: comparison/and/or have 2, not/isnull have 1.
  std::vector<ExprPtr> children;

  static ExprPtr Literal(Value v);
  static ExprPtr Column(std::string alias, std::string column);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr inner);
  static ExprPtr IsNull(ExprPtr inner);

  ExprPtr Clone() const;
  std::string ToString() const;
};

// Flattens a conjunction tree into its conjuncts (AND nodes only).
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out);

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_EXPR_H_
