#include "reldb/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace xmlac::reldb {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "REAL";
    case ValueType::kString:
      return "TEXT";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() != ValueType::kString) return ToString();
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += '\'';
  return out;
}

namespace {

// Numeric interpretation of a string value, if it parses completely.
bool ParseNumeric(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return *end == '\0';
}

}  // namespace

bool Value::SqlEquals(const Value& other) const {
  int cmp;
  return SqlCompare(other, &cmp) && cmp == 0;
}

bool Value::SqlCompare(const Value& other, int* cmp) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) return false;
  auto numeric = [cmp](double x, double y) {
    *cmp = x < y ? -1 : (x > y ? 1 : 0);
    return true;
  };
  bool a_num = a != ValueType::kString;
  bool b_num = b != ValueType::kString;
  if (a_num && b_num) return numeric(AsDouble(), other.AsDouble());
  if (!a_num && !b_num) {
    // Empty strings (shredded elements without character data) are
    // incomparable, mirroring xpath::CompareValues.
    if (AsString().empty() || other.AsString().empty()) return false;
    // Two strings: numeric when both parse as numbers, else lexicographic.
    double x, y;
    if (ParseNumeric(AsString(), &x) && ParseNumeric(other.AsString(), &y)) {
      return numeric(x, y);
    }
    int c = AsString().compare(other.AsString());
    *cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return true;
  }
  // Mixed number/string: comparable when the string parses as a number.
  double sv;
  if (a_num) {
    if (!ParseNumeric(other.AsString(), &sv)) return false;
    return numeric(AsDouble(), sv);
  }
  if (!ParseNumeric(AsString(), &sv)) return false;
  return numeric(sv, other.AsDouble());
}

int Value::TotalCompare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  switch (rank(a)) {
    case 0:
      return 0;
    case 1: {
      // Exact int ordering when both are ints; else via double.
      if (a == ValueType::kInt64 && b == ValueType::kInt64) {
        int64_t x = AsInt(), y = other.AsInt();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      double x = AsDouble(), y = other.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble: {
      double d = std::get<double>(v_);
      // Hash integral doubles like the equal int64 so TotalCompare-equal
      // values hash equal.
      if (d == std::floor(d) && std::abs(d) < 9e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

}  // namespace xmlac::reldb
