#include "reldb/table.h"

#include <algorithm>

#include "common/logging.h"

namespace xmlac::reldb {

Row Table::GetRow(RowIdx idx) const {
  Row row;
  row.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    row.push_back(GetValue(idx, c));
  }
  return row;
}

Status Table::CreateIndex(std::string_view column) {
  auto col = schema_.ColumnIndex(column);
  if (!col.has_value()) {
    return Status::NotFound("no column '" + std::string(column) + "' in " +
                            name());
  }
  if (indexes_.count(*col) > 0) {
    return Status::AlreadyExists("index on " + name() + "." +
                                 std::string(column) + " already exists");
  }
  auto& index = indexes_[*col];
  for (RowIdx i = 0; i < Capacity(); ++i) {
    if (IsAlive(i)) index[GetValue(i, *col)].push_back(i);
  }
  return Status::OK();
}

bool Table::HasIndex(size_t col) const { return indexes_.count(col) > 0; }

std::vector<RowIdx> Table::IndexLookup(size_t col, const Value& v) const {
  auto it = indexes_.find(col);
  if (it == indexes_.end()) return {};
  auto vit = it->second.find(v);
  if (vit == it->second.end()) return {};
  return vit->second;
}

void Table::IndexOnInsert(RowIdx idx, const Row& row) {
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(idx);
  }
}

void Table::IndexOnUpdate(RowIdx idx, size_t col, const Value& old_v,
                          const Value& new_v) {
  auto it = indexes_.find(col);
  if (it == indexes_.end()) return;
  auto& index = it->second;
  auto old_it = index.find(old_v);
  if (old_it != index.end()) {
    auto& vec = old_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), idx), vec.end());
    if (vec.empty()) index.erase(old_it);
  }
  index[new_v].push_back(idx);
}

void Table::IndexOnDelete(RowIdx idx) {
  for (auto& [col, index] : indexes_) {
    Value v = GetValue(idx, col);
    auto vit = index.find(v);
    if (vit != index.end()) {
      auto& vec = vit->second;
      vec.erase(std::remove(vec.begin(), vec.end(), idx), vec.end());
      if (vec.empty()) index.erase(vit);
    }
  }
}

// --- RowStoreTable ---------------------------------------------------------

Result<RowIdx> RowStoreTable::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(schema_.num_columns()) + " for table " + name());
  }
  RowIdx idx = valid_.size();
  IndexOnInsert(idx, row);
  for (Value& v : row) flat_.push_back(std::move(v));
  valid_.push_back(1);
  ++alive_;
  return idx;
}

void RowStoreTable::SetValue(RowIdx idx, size_t col, Value v) {
  XMLAC_DCHECK(IsAlive(idx));
  IndexOnUpdate(idx, col, flat_[idx * stride_ + col], v);
  flat_[idx * stride_ + col] = std::move(v);
}

void RowStoreTable::DeleteRow(RowIdx idx) {
  if (!IsAlive(idx)) return;
  IndexOnDelete(idx);
  valid_[idx] = 0;
  --alive_;
}

// --- ColumnStoreTable -------------------------------------------------------

Result<RowIdx> ColumnStoreTable::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(schema_.num_columns()) + " for table " + name());
  }
  RowIdx idx = valid_.size();
  IndexOnInsert(idx, row);
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  valid_.push_back(1);
  ++alive_;
  return idx;
}

void ColumnStoreTable::SetValue(RowIdx idx, size_t col, Value v) {
  XMLAC_DCHECK(IsAlive(idx));
  IndexOnUpdate(idx, col, columns_[col][idx], v);
  columns_[col][idx] = std::move(v);
}

void ColumnStoreTable::DeleteRow(RowIdx idx) {
  if (!IsAlive(idx)) return;
  IndexOnDelete(idx);
  valid_[idx] = 0;
  --alive_;
}

std::unique_ptr<Table> MakeTable(TableSchema schema, StorageKind kind) {
  if (kind == StorageKind::kRowStore) {
    return std::make_unique<RowStoreTable>(std::move(schema));
  }
  return std::make_unique<ColumnStoreTable>(std::move(schema));
}

}  // namespace xmlac::reldb
