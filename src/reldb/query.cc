#include "reldb/query.h"

namespace xmlac::reldb {

SelectQuery SelectQuery::Clone() const {
  SelectQuery q;
  q.distinct = distinct;
  q.count_star = count_star;
  q.select = select;
  q.from = from;
  if (where != nullptr) q.where = where->Clone();
  q.order_by = order_by;
  q.limit = limit;
  return q;
}

std::string SelectQuery::ToSql() const {
  std::string out = distinct ? "SELECT DISTINCT " : "SELECT ";
  if (count_star) {
    out += "COUNT(*)";
  }
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].alias.empty() ? select[i].column
                                   : select[i].alias + "." + select[i].column;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table;
    if (!from[i].alias.empty() && from[i].alias != from[i].table) {
      out += ' ';
      out += from[i].alias;
    }
  }
  if (where != nullptr) {
    out += " WHERE ";
    out += where->ToString();
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      const ColumnRef& c = order_by[i].column;
      out += c.alias.empty() ? c.column : c.alias + "." + c.column;
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit.has_value()) {
    out += " LIMIT " + std::to_string(*limit);
  }
  return out;
}

CompoundSelect CompoundSelect::Clone() const {
  CompoundSelect c;
  c.first = first.Clone();
  for (const auto& [op, sub] : rest) {
    c.rest.emplace_back(op, sub.Clone());
  }
  return c;
}

std::string CompoundSelect::ToSql() const {
  std::string out = first.ToSql();
  for (const auto& [op, sub] : rest) {
    out += op == SetOp::kUnion ? " UNION " : " EXCEPT ";
    bool needs_parens = !sub.rest.empty();
    if (needs_parens) out += '(';
    out += sub.ToSql();
    if (needs_parens) out += ')';
  }
  return out;
}

}  // namespace xmlac::reldb
