#include "reldb/catalog.h"

namespace xmlac::reldb {

Result<Table*> Catalog::CreateTable(TableSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table '" + schema.name() +
                                 "' already exists");
  }
  auto table = MakeTable(schema, kind_);
  Table* raw = table.get();
  tables_[schema.name()] = std::move(table);
  return raw;
}

Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' not found");
  }
  tables_.erase(it);
  return Status::OK();
}

Table* Catalog::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

size_t Catalog::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, t] : tables_) n += t->AliveCount();
  return n;
}

}  // namespace xmlac::reldb
