#ifndef XMLAC_RELDB_QUERY_H_
#define XMLAC_RELDB_QUERY_H_

// Statement AST for the SQL dialect the shredder and annotator emit.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reldb/expr.h"
#include "reldb/schema.h"

namespace xmlac::reldb {

struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderTerm {
  ColumnRef column;
  bool descending = false;
};

// SELECT [DISTINCT] <cols> | COUNT(*) FROM <tables> [WHERE <expr>]
// [ORDER BY <cols>] [LIMIT <n>]  (comma joins + conjunctive predicates).
struct SelectQuery {
  bool distinct = false;
  // COUNT(*): `select` is empty and the result is one row with one INT.
  bool count_star = false;
  std::vector<ColumnRef> select;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<OrderTerm> order_by;
  std::optional<size_t> limit;

  SelectQuery() = default;
  SelectQuery(SelectQuery&&) = default;
  SelectQuery& operator=(SelectQuery&&) = default;
  SelectQuery Clone() const;
  std::string ToSql() const;
};

// A select combined with UNION / EXCEPT (set semantics, left-associative).
struct CompoundSelect {
  enum class SetOp : uint8_t { kUnion, kExcept };

  SelectQuery first;
  std::vector<std::pair<SetOp, CompoundSelect>> rest;

  CompoundSelect() = default;
  CompoundSelect(CompoundSelect&&) = default;
  CompoundSelect& operator=(CompoundSelect&&) = default;
  CompoundSelect Clone() const;
  std::string ToSql() const;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty: positional
  std::vector<Row> rows;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  // may be null
};

struct CreateTableStatement {
  TableSchema schema;
};

// A parsed SQL statement (exactly one member is set).
struct Statement {
  enum class Kind : uint8_t {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
  };
  Kind kind = Kind::kSelect;
  CompoundSelect select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement del;
  CreateTableStatement create;
};

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_QUERY_H_
