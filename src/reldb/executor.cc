#include "reldb/executor.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace xmlac::reldb {
namespace {

// Seed scans below this many row slots stay serial; a relational row check
// is cheap enough that small tables cannot amortize the fan-out.
constexpr size_t kScanShardMinRows = 4096;

// --- Row hashing for set semantics -----------------------------------------

struct RowHash {
  size_t operator()(const Row& r) const {
    size_t h = 0x345678;
    for (const Value& v : r) {
      h = h * 1000003 + v.Hash();
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].TotalCompare(b[i]) != 0) return false;
    }
    return true;
  }
};

using RowSet = std::unordered_set<Row, RowHash, RowEq>;

// --- Binding environment ----------------------------------------------------

// One slot per FROM entry.
struct Slot {
  std::string alias;
  Table* table = nullptr;
};

struct BoundColumn {
  size_t slot = 0;
  size_t col = 0;
};

class Binder {
 public:
  explicit Binder(const std::vector<Slot>& slots) : slots_(slots) {}

  Result<BoundColumn> Bind(const ColumnRef& ref) const {
    if (!ref.alias.empty()) {
      for (size_t s = 0; s < slots_.size(); ++s) {
        if (slots_[s].alias == ref.alias) {
          auto col = slots_[s].table->schema().ColumnIndex(ref.column);
          if (!col.has_value()) {
            return Status::NotFound("no column '" + ref.column +
                                    "' in table aliased '" + ref.alias + "'");
          }
          return BoundColumn{s, *col};
        }
      }
      return Status::NotFound("unknown table alias '" + ref.alias + "'");
    }
    // Unqualified: must be unambiguous across slots.
    std::optional<BoundColumn> found;
    for (size_t s = 0; s < slots_.size(); ++s) {
      auto col = slots_[s].table->schema().ColumnIndex(ref.column);
      if (col.has_value()) {
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column '" + ref.column +
                                         "'");
        }
        found = BoundColumn{s, *col};
      }
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column '" + ref.column + "'");
    }
    return *found;
  }

 private:
  const std::vector<Slot>& slots_;
};

// A partial join tuple: row index per bound slot.
using TupleRows = std::vector<RowIdx>;

// Evaluates `e` against a tuple whose slots [0, bound) are set.  Returns
// error for references to unbound slots (callers pre-classify, so this only
// fires on malformed residual placement — treated as Internal).
class ExprEvaluator {
 public:
  ExprEvaluator(const std::vector<Slot>& slots, const Binder& binder)
      : slots_(slots), binder_(binder) {}

  Result<Value> EvalValue(const Expr& e, const TupleRows& tuple) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef: {
        XMLAC_ASSIGN_OR_RETURN(BoundColumn bc, binder_.Bind(e.column));
        if (bc.slot >= tuple.size()) {
          return Status::Internal("reference to unbound slot");
        }
        return slots_[bc.slot].table->GetValue(tuple[bc.slot], bc.col);
      }
      default:
        return Status::Internal("expected scalar expression");
    }
  }

  Result<bool> EvalBool(const Expr& e, const TupleRows& tuple) const {
    switch (e.kind) {
      case ExprKind::kAnd: {
        XMLAC_ASSIGN_OR_RETURN(bool l, EvalBool(*e.children[0], tuple));
        if (!l) return false;
        return EvalBool(*e.children[1], tuple);
      }
      case ExprKind::kOr: {
        XMLAC_ASSIGN_OR_RETURN(bool l, EvalBool(*e.children[0], tuple));
        if (l) return true;
        return EvalBool(*e.children[1], tuple);
      }
      case ExprKind::kNot: {
        XMLAC_ASSIGN_OR_RETURN(bool v, EvalBool(*e.children[0], tuple));
        return !v;
      }
      case ExprKind::kIsNull: {
        XMLAC_ASSIGN_OR_RETURN(Value v, EvalValue(*e.children[0], tuple));
        return v.is_null();
      }
      case ExprKind::kComparison: {
        XMLAC_ASSIGN_OR_RETURN(Value l, EvalValue(*e.children[0], tuple));
        XMLAC_ASSIGN_OR_RETURN(Value r, EvalValue(*e.children[1], tuple));
        int cmp;
        if (!l.SqlCompare(r, &cmp)) {
          // NULL / incomparable: false, except `<>` between comparable-but-
          // unequal types which we also leave false (SQL-NULL-ish).
          return false;
        }
        switch (e.op) {
          case CompareOp::kEq:
            return cmp == 0;
          case CompareOp::kNe:
            return cmp != 0;
          case CompareOp::kLt:
            return cmp < 0;
          case CompareOp::kLe:
            return cmp <= 0;
          case CompareOp::kGt:
            return cmp > 0;
          case CompareOp::kGe:
            return cmp >= 0;
        }
        return false;
      }
      default:
        return Status::Internal("expected boolean expression");
    }
  }

 private:
  const std::vector<Slot>& slots_;
  const Binder& binder_;
};

// Collects the distinct slots referenced by an expression.  Returns false
// when a column fails to bind (the caller re-binds to surface the error).
bool CollectSlots(const Expr& e, const Binder& binder,
                  std::vector<size_t>* slots) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef: {
      auto bc = binder.Bind(e.column);
      if (!bc.ok()) return false;
      if (std::find(slots->begin(), slots->end(), bc->slot) == slots->end()) {
        slots->push_back(bc->slot);
      }
      return true;
    }
    default:
      for (const ExprPtr& c : e.children) {
        if (!CollectSlots(*c, binder, slots)) return false;
      }
      return true;
  }
}

// Recognizes `a.x = b.y` between different slots.
struct EquiJoin {
  BoundColumn left;   // lower slot
  BoundColumn right;  // higher slot
};

std::optional<EquiJoin> AsEquiJoin(const Expr& e, const Binder& binder) {
  if (e.kind != ExprKind::kComparison || e.op != CompareOp::kEq) {
    return std::nullopt;
  }
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  if (l.kind != ExprKind::kColumnRef || r.kind != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  auto bl = binder.Bind(l.column);
  auto br = binder.Bind(r.column);
  if (!bl.ok() || !br.ok() || bl->slot == br->slot) return std::nullopt;
  EquiJoin j;
  if (bl->slot < br->slot) {
    j.left = *bl;
    j.right = *br;
  } else {
    j.left = *br;
    j.right = *bl;
  }
  return j;
}

// Recognizes `col = literal` over a single slot; returns (bound, value).
std::optional<std::pair<BoundColumn, Value>> AsPointFilter(
    const Expr& e, const Binder& binder) {
  if (e.kind != ExprKind::kComparison || e.op != CompareOp::kEq) {
    return std::nullopt;
  }
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral) {
    col = &l;
    lit = &r;
  } else if (r.kind == ExprKind::kColumnRef && l.kind == ExprKind::kLiteral) {
    col = &r;
    lit = &l;
  } else {
    return std::nullopt;
  }
  auto bc = binder.Bind(col->column);
  if (!bc.ok()) return std::nullopt;
  return std::make_pair(*bc, lit->literal);
}

void DedupeRows(ResultSet* rs) {
  RowSet seen;
  std::vector<Row> out;
  out.reserve(rs->rows.size());
  for (Row& r : rs->rows) {
    if (seen.insert(r).second) out.push_back(std::move(r));
  }
  rs->rows = std::move(out);
}

// Mirrors the ExecStats delta accrued during one public statement into the
// current metrics registry on scope exit (covers error returns too); a no-op
// when no registry is installed.
class StatsDeltaReporter {
 public:
  explicit StatsDeltaReporter(const ExecStats* stats)
      : stats_(stats), before_(*stats) {}
  StatsDeltaReporter(const StatsDeltaReporter&) = delete;
  StatsDeltaReporter& operator=(const StatsDeltaReporter&) = delete;
  ~StatsDeltaReporter() {
    if (obs::CurrentMetrics() == nullptr) return;
    obs::IncrementCounter("reldb.rows_scanned",
                          stats_->rows_scanned - before_.rows_scanned);
    obs::IncrementCounter("reldb.rows_output",
                          stats_->rows_output - before_.rows_output);
    obs::IncrementCounter("reldb.statements",
                          stats_->statements - before_.statements);
    obs::IncrementCounter("reldb.index_hits",
                          stats_->index_hits - before_.index_hits);
  }

 private:
  const ExecStats* stats_;
  ExecStats before_;
};

// Per-slot execution strategy derived from the WHERE conjuncts.
struct SlotPlan {
  std::vector<const Expr*> filters;      // single-slot, pushed to the scan
  std::optional<EquiJoin> hash_join;     // drives a hash join into the slot
  std::vector<const Expr*> join_checks;  // residual multi-slot conjuncts
};

struct SelectPlan {
  std::vector<Slot> slots;
  std::vector<SlotPlan> per_slot;
};

// Binds FROM entries and classifies conjuncts (shared by execution and
// EXPLAIN).  `q.where` must outlive the plan (conjunct pointers alias it).
Result<SelectPlan> BuildPlan(const SelectQuery& q, Catalog* catalog) {
  if (q.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  SelectPlan plan;
  for (const TableRef& tr : q.from) {
    Table* t = catalog->GetTable(tr.table);
    if (t == nullptr) {
      return Status::NotFound("table '" + tr.table + "' not found");
    }
    for (const Slot& s : plan.slots) {
      if (s.alias == tr.effective_alias()) {
        return Status::InvalidArgument("duplicate alias '" +
                                       tr.effective_alias() + "'");
      }
    }
    plan.slots.push_back(Slot{tr.effective_alias(), t});
  }
  Binder binder(plan.slots);
  ExprEvaluator eval(plan.slots, binder);
  std::vector<const Expr*> conjuncts;
  if (q.where != nullptr) CollectConjuncts(*q.where, &conjuncts);
  plan.per_slot.resize(plan.slots.size());
  for (const Expr* c : conjuncts) {
    std::vector<size_t> used;
    if (!CollectSlots(*c, binder, &used)) {
      // Re-evaluate to surface the binding error message.
      TupleRows dummy(plan.slots.size(), 0);
      auto st = eval.EvalBool(*c, dummy);
      return st.ok() ? Status::Internal("bad slot binding") : st.status();
    }
    size_t target =
        used.empty() ? 0 : *std::max_element(used.begin(), used.end());
    if (used.size() <= 1) {
      // References at most one slot: pushable scan filter.
      plan.per_slot[target].filters.push_back(c);
      continue;
    }
    auto join = AsEquiJoin(*c, binder);
    if (join.has_value() && join->right.slot == target &&
        !plan.per_slot[target].hash_join.has_value()) {
      plan.per_slot[target].hash_join = join;
    } else {
      // Any other multi-slot conjunct is checked once all its slots are
      // bound (at `target`).
      plan.per_slot[target].join_checks.push_back(c);
    }
  }
  return plan;
}

}  // namespace

std::vector<int64_t> ResultSet::IdColumn() const {
  std::vector<int64_t> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    if (!r.empty() && r[0].type() == ValueType::kInt64) {
      out.push_back(r[0].AsInt());
    }
  }
  return out;
}

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += '\n';
  for (const Row& r : rows) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out += " | ";
      out += r[i].ToString();
    }
    out += '\n';
  }
  return out;
}

Result<ResultSet> Executor::ExecuteSingleSelect(const SelectQuery& q) {
  ++stats_.statements;
  XMLAC_ASSIGN_OR_RETURN(SelectPlan built, BuildPlan(q, catalog_));
  std::vector<Slot>& slots = built.slots;
  std::vector<SlotPlan>& plans = built.per_slot;
  Binder binder(slots);
  ExprEvaluator eval(slots, binder);

  // Seed with slot 0.
  std::vector<TupleRows> tuples;
  {
    Table* t = slots[0].table;
    std::vector<ShardRange> ranges =
        PlanShards(t->Capacity(), shard_, kScanShardMinRows);
    if (ranges.size() <= 1) {
      tuples.reserve(t->AliveCount());
      for (RowIdx i = 0; i < t->Capacity(); ++i) {
        if (!t->IsAlive(i)) continue;
        ++stats_.rows_scanned;
        TupleRows tup = {i};
        bool pass = true;
        for (const Expr* f : plans[0].filters) {
          XMLAC_ASSIGN_OR_RETURN(bool ok, eval.EvalBool(*f, tup));
          if (!ok) {
            pass = false;
            break;
          }
        }
        if (pass) tuples.push_back(std::move(tup));
      }
    } else {
      // Shard-parallel sub-scans over contiguous row ranges (Table reads
      // and ExprEvaluator are const); per-range tuples concatenated in
      // range order reproduce the serial scan order exactly.  Stats and
      // errors accumulate per range and merge after the join (first range's
      // error wins, matching the serial ascending scan).
      std::vector<std::vector<TupleRows>> parts(ranges.size());
      std::vector<uint64_t> scanned(ranges.size(), 0);
      std::vector<Status> statuses(ranges.size(), Status::OK());
      ParallelFor(ranges.size(), shard_.ResolvedThreads(), 1, [&](size_t k) {
        for (RowIdx i = ranges[k].begin; i < ranges[k].end; ++i) {
          if (!t->IsAlive(i)) continue;
          ++scanned[k];
          TupleRows tup = {i};
          bool pass = true;
          for (const Expr* f : plans[0].filters) {
            Result<bool> ok = eval.EvalBool(*f, tup);
            if (!ok.ok()) {
              statuses[k] = ok.status();
              return;
            }
            if (!*ok) {
              pass = false;
              break;
            }
          }
          if (pass) parts[k].push_back(std::move(tup));
        }
      });
      size_t total = 0;
      for (size_t k = 0; k < ranges.size(); ++k) {
        XMLAC_RETURN_IF_ERROR(statuses[k]);
        stats_.rows_scanned += scanned[k];
        total += parts[k].size();
      }
      tuples.reserve(total);
      for (std::vector<TupleRows>& part : parts) {
        for (TupleRows& tup : part) tuples.push_back(std::move(tup));
      }
      obs::IncrementCounter("reldb.shard.scans");
      obs::IncrementCounter("reldb.shard.shards", ranges.size());
    }
  }

  // Join in remaining slots.
  for (size_t s = 1; s < slots.size(); ++s) {
    Table* t = slots[s].table;
    const SlotPlan& plan = plans[s];
    // Candidate row list for this slot, after pushed filters.
    std::vector<RowIdx> candidates;
    candidates.reserve(t->AliveCount());
    for (RowIdx i = 0; i < t->Capacity(); ++i) {
      if (!t->IsAlive(i)) continue;
      ++stats_.rows_scanned;
      candidates.push_back(i);
    }
    // Pushed single-slot filters need a tuple with slot `s` bound; evaluate
    // them against a padded tuple.
    if (!plan.filters.empty()) {
      std::vector<RowIdx> filtered;
      filtered.reserve(candidates.size());
      TupleRows padded(s + 1, 0);
      for (RowIdx i : candidates) {
        padded[s] = i;
        bool pass = true;
        for (const Expr* f : plan.filters) {
          // Filters classified to slot s reference only slot s (single-slot
          // conjunct), so the padding rows are never read.
          XMLAC_ASSIGN_OR_RETURN(bool ok, eval.EvalBool(*f, padded));
          if (!ok) {
            pass = false;
            break;
          }
        }
        if (pass) filtered.push_back(i);
      }
      candidates = std::move(filtered);
    }

    std::vector<TupleRows> next;
    if (plan.hash_join.has_value()) {
      const EquiJoin& j = *plan.hash_join;
      // Build on the new table's join column.
      std::unordered_map<Value, std::vector<RowIdx>, ValueHash> hash;
      for (RowIdx i : candidates) {
        Value v = t->GetValue(i, j.right.col);
        if (!v.is_null()) hash[std::move(v)].push_back(i);
      }
      for (const TupleRows& tup : tuples) {
        Value probe =
            slots[j.left.slot].table->GetValue(tup[j.left.slot], j.left.col);
        if (probe.is_null()) continue;
        auto it = hash.find(probe);
        if (it == hash.end()) continue;
        for (RowIdx i : it->second) {
          TupleRows grown = tup;
          grown.push_back(i);
          next.push_back(std::move(grown));
        }
      }
    } else {
      // Nested-loop cross join.
      for (const TupleRows& tup : tuples) {
        for (RowIdx i : candidates) {
          TupleRows grown = tup;
          grown.push_back(i);
          next.push_back(std::move(grown));
        }
      }
    }
    // Apply remaining join checks for this slot.
    if (!plan.join_checks.empty()) {
      std::vector<TupleRows> checked;
      for (TupleRows& tup : next) {
        bool pass = true;
        for (const Expr* c : plan.join_checks) {
          XMLAC_ASSIGN_OR_RETURN(bool ok, eval.EvalBool(*c, tup));
          if (!ok) {
            pass = false;
            break;
          }
        }
        if (pass) checked.push_back(std::move(tup));
      }
      next = std::move(checked);
    }
    tuples = std::move(next);
    if (tuples.empty()) break;
  }

  // COUNT(*): aggregate over the joined tuples.
  if (q.count_star) {
    ResultSet rs;
    rs.columns.push_back("count");
    rs.rows.push_back({Value::Int(static_cast<int64_t>(tuples.size()))});
    ++stats_.rows_output;
    return rs;
  }

  // ORDER BY: sort the full tuples (any bound column may be referenced).
  if (!q.order_by.empty()) {
    std::vector<std::pair<BoundColumn, bool>> keys;
    for (const OrderTerm& term : q.order_by) {
      XMLAC_ASSIGN_OR_RETURN(BoundColumn bc, binder.Bind(term.column));
      keys.emplace_back(bc, term.descending);
    }
    std::stable_sort(
        tuples.begin(), tuples.end(),
        [&](const TupleRows& a, const TupleRows& b) {
          for (const auto& [bc, desc] : keys) {
            Value va = slots[bc.slot].table->GetValue(a[bc.slot], bc.col);
            Value vb = slots[bc.slot].table->GetValue(b[bc.slot], bc.col);
            int cmp = va.TotalCompare(vb);
            if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
          }
          return false;
        });
  }

  // Project.
  ResultSet rs;
  std::vector<BoundColumn> proj;
  for (const ColumnRef& ref : q.select) {
    XMLAC_ASSIGN_OR_RETURN(BoundColumn bc, binder.Bind(ref));
    proj.push_back(bc);
    rs.columns.push_back(ref.column);
  }
  rs.rows.reserve(tuples.size());
  for (const TupleRows& tup : tuples) {
    Row row;
    row.reserve(proj.size());
    for (const BoundColumn& bc : proj) {
      row.push_back(slots[bc.slot].table->GetValue(tup[bc.slot], bc.col));
    }
    rs.rows.push_back(std::move(row));
  }
  // DISTINCT keeps first occurrences, so a sorted input stays sorted.
  if (q.distinct) DedupeRows(&rs);
  if (q.limit.has_value() && rs.rows.size() > *q.limit) {
    rs.rows.resize(*q.limit);
  }
  stats_.rows_output += rs.rows.size();
  return rs;
}

Result<ResultSet> Executor::ExecuteSelect(const CompoundSelect& q) {
  obs::ScopedTimer timer("reldb.select_us");
  StatsDeltaReporter reporter(&stats_);
  return ExecuteCompound(q);
}

Result<ResultSet> Executor::ExecuteCompound(const CompoundSelect& q) {
  XMLAC_ASSIGN_OR_RETURN(ResultSet acc, ExecuteSingleSelect(q.first));
  if (q.rest.empty()) return acc;
  DedupeRows(&acc);
  for (const auto& [op, sub] : q.rest) {
    XMLAC_ASSIGN_OR_RETURN(ResultSet rhs, ExecuteCompound(sub));
    if (rhs.columns.size() != acc.columns.size()) {
      return Status::InvalidArgument(
          "set operation requires equal column counts");
    }
    if (op == CompoundSelect::SetOp::kUnion) {
      RowSet seen(acc.rows.begin(), acc.rows.end());
      for (Row& r : rhs.rows) {
        if (seen.insert(r).second) acc.rows.push_back(std::move(r));
      }
    } else {
      RowSet minus(rhs.rows.begin(), rhs.rows.end());
      std::vector<Row> kept;
      kept.reserve(acc.rows.size());
      for (Row& r : acc.rows) {
        if (minus.find(r) == minus.end()) kept.push_back(std::move(r));
      }
      acc.rows = std::move(kept);
    }
  }
  return acc;
}

Result<size_t> Executor::ExecuteInsert(const InsertStatement& st) {
  obs::ScopedTimer scoped_timer("reldb.insert_us");
  StatsDeltaReporter reporter(&stats_);
  ++stats_.statements;
  Table* t = catalog_->GetTable(st.table);
  if (t == nullptr) {
    return Status::NotFound("table '" + st.table + "' not found");
  }
  const TableSchema& schema = t->schema();
  // Column mapping (positional when st.columns is empty).
  std::vector<size_t> mapping;
  if (!st.columns.empty()) {
    for (const std::string& c : st.columns) {
      auto idx = schema.ColumnIndex(c);
      if (!idx.has_value()) {
        return Status::NotFound("no column '" + c + "' in " + st.table);
      }
      mapping.push_back(*idx);
    }
  }
  size_t inserted = 0;
  for (const Row& src : st.rows) {
    Row row;
    if (mapping.empty()) {
      if (src.size() != schema.num_columns()) {
        return Status::InvalidArgument("VALUES width mismatch for " +
                                       st.table);
      }
      row = src;
    } else {
      if (src.size() != mapping.size()) {
        return Status::InvalidArgument("VALUES width mismatch for " +
                                       st.table);
      }
      row.assign(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < mapping.size(); ++i) row[mapping[i]] = src[i];
    }
    XMLAC_ASSIGN_OR_RETURN(RowIdx idx, t->Insert(std::move(row)));
    (void)idx;
    ++inserted;
  }
  obs::IncrementCounter("reldb.rows_inserted", inserted);
  return inserted;
}

namespace {

// Rows of `t` matching `where` (null = all).  Uses a hash index when the
// WHERE contains an indexed point conjunct.
Result<std::vector<RowIdx>> MatchRows(Table* t, const Expr* where,
                                      ExecStats* stats) {
  std::vector<Slot> slots = {Slot{t->name(), t}};
  Binder binder(slots);
  ExprEvaluator eval(slots, binder);
  std::vector<RowIdx> candidates;
  bool used_index = false;
  if (where != nullptr) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(*where, &conjuncts);
    for (const Expr* c : conjuncts) {
      auto point = AsPointFilter(*c, binder);
      if (point.has_value() && t->HasIndex(point->first.col)) {
        candidates = t->IndexLookup(point->first.col, point->second);
        used_index = true;
        ++stats->index_hits;
        break;
      }
    }
  }
  std::vector<RowIdx> out;
  auto filter_row = [&](RowIdx i) -> Result<bool> {
    if (!t->IsAlive(i)) return false;
    ++stats->rows_scanned;
    if (where != nullptr) {
      TupleRows tup = {i};
      return eval.EvalBool(*where, tup);
    }
    return true;
  };
  if (used_index) {
    out.reserve(candidates.size());
    for (RowIdx i : candidates) {
      XMLAC_ASSIGN_OR_RETURN(bool ok, filter_row(i));
      if (ok) out.push_back(i);
    }
  } else {
    // Full scan: filter the arena directly instead of materialising an
    // all-alive candidate vector first (the sign-annotation loop's point
    // updates land here when indexes are disabled, so the copy shows up).
    out.reserve(t->AliveCount());
    for (RowIdx i = 0; i < t->Capacity(); ++i) {
      XMLAC_ASSIGN_OR_RETURN(bool ok, filter_row(i));
      if (ok) out.push_back(i);
    }
  }
  return out;
}

}  // namespace

Result<size_t> Executor::ExecuteUpdate(const UpdateStatement& st) {
  obs::ScopedTimer scoped_timer("reldb.update_us");
  StatsDeltaReporter reporter(&stats_);
  ++stats_.statements;
  Table* t = catalog_->GetTable(st.table);
  if (t == nullptr) {
    return Status::NotFound("table '" + st.table + "' not found");
  }
  std::vector<std::pair<size_t, const Value*>> sets;
  for (const auto& [col, v] : st.assignments) {
    auto idx = t->schema().ColumnIndex(col);
    if (!idx.has_value()) {
      return Status::NotFound("no column '" + col + "' in " + st.table);
    }
    sets.emplace_back(*idx, &v);
  }
  XMLAC_ASSIGN_OR_RETURN(std::vector<RowIdx> rows,
                         MatchRows(t, st.where.get(), &stats_));
  for (RowIdx i : rows) {
    for (const auto& [col, v] : sets) t->SetValue(i, col, *v);
  }
  obs::IncrementCounter("reldb.rows_updated", rows.size());
  return rows.size();
}

Result<size_t> Executor::ExecuteDelete(const DeleteStatement& st) {
  obs::ScopedTimer scoped_timer("reldb.delete_us");
  StatsDeltaReporter reporter(&stats_);
  ++stats_.statements;
  Table* t = catalog_->GetTable(st.table);
  if (t == nullptr) {
    return Status::NotFound("table '" + st.table + "' not found");
  }
  XMLAC_ASSIGN_OR_RETURN(std::vector<RowIdx> rows,
                         MatchRows(t, st.where.get(), &stats_));
  for (RowIdx i : rows) t->DeleteRow(i);
  obs::IncrementCounter("reldb.rows_deleted", rows.size());
  return rows.size();
}

Result<ResultSet> Executor::Execute(const Statement& st) {
  switch (st.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(st.select);
    case Statement::Kind::kInsert: {
      XMLAC_ASSIGN_OR_RETURN(size_t n, ExecuteInsert(st.insert));
      (void)n;
      return ResultSet{};
    }
    case Statement::Kind::kUpdate: {
      XMLAC_ASSIGN_OR_RETURN(size_t n, ExecuteUpdate(st.update));
      (void)n;
      return ResultSet{};
    }
    case Statement::Kind::kDelete: {
      XMLAC_ASSIGN_OR_RETURN(size_t n, ExecuteDelete(st.del));
      (void)n;
      return ResultSet{};
    }
    case Statement::Kind::kCreateTable: {
      ++stats_.statements;
      XMLAC_ASSIGN_OR_RETURN(Table * t,
                             catalog_->CreateTable(st.create.schema));
      (void)t;
      return ResultSet{};
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<std::string> Executor::ExplainSelect(const CompoundSelect& q) {
  std::string out;
  // Leading select, then each set operand, recursively.
  std::function<Status(const CompoundSelect&, int)> explain =
      [&](const CompoundSelect& cq, int depth) -> Status {
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    XMLAC_ASSIGN_OR_RETURN(SelectPlan plan, BuildPlan(cq.first, catalog_));
    for (size_t s = 0; s < plan.slots.size(); ++s) {
      const Slot& slot = plan.slots[s];
      const SlotPlan& sp = plan.per_slot[s];
      out += indent;
      if (s == 0) {
        out += "SCAN " + slot.table->name() + " AS " + slot.alias;
      } else if (sp.hash_join.has_value()) {
        const EquiJoin& j = *sp.hash_join;
        out += "HASH JOIN " + slot.table->name() + " AS " + slot.alias +
               " ON " + plan.slots[j.left.slot].alias + "." +
               plan.slots[j.left.slot]
                   .table->schema()
                   .columns()[j.left.col]
                   .name +
               " = " + slot.alias + "." +
               slot.table->schema().columns()[j.right.col].name;
      } else {
        out += "NESTED LOOP " + slot.table->name() + " AS " + slot.alias;
      }
      out += " (" + std::to_string(slot.table->AliveCount()) + " rows)";
      for (const Expr* f : sp.filters) {
        out += "\n" + indent + "  FILTER " + f->ToString();
      }
      for (const Expr* c : sp.join_checks) {
        out += "\n" + indent + "  CHECK " + c->ToString();
      }
      out += '\n';
    }
    if (cq.first.distinct) out += indent + "DISTINCT\n";
    for (const auto& [op, sub] : cq.rest) {
      out += indent;
      out += op == CompoundSelect::SetOp::kUnion ? "UNION\n" : "EXCEPT\n";
      XMLAC_RETURN_IF_ERROR(explain(sub, depth + 1));
    }
    return Status::OK();
  };
  XMLAC_RETURN_IF_ERROR(explain(q, 0));
  return out;
}

Result<ResultSet> Executor::Query(std::string_view sql) {
  XMLAC_ASSIGN_OR_RETURN(Statement st, ParseSql(sql));
  return Execute(st);
}

Status Executor::Run(std::string_view script) {
  XMLAC_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseSqlScript(script));
  for (const Statement& st : stmts) {
    auto r = Execute(st);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

}  // namespace xmlac::reldb
