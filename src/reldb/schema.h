#ifndef XMLAC_RELDB_SCHEMA_H_
#define XMLAC_RELDB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "reldb/value.h"

namespace xmlac::reldb {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
};

// A table schema: ordered, uniquely named columns.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnDef> columns)
      : name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  std::optional<size_t> ColumnIndex(std::string_view column) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == column) return i;
    }
    return std::nullopt;
  }

  // "CREATE TABLE name (col TYPE, ...);"
  std::string ToCreateSql() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

using Row = std::vector<Value>;

}  // namespace xmlac::reldb

#endif  // XMLAC_RELDB_SCHEMA_H_
