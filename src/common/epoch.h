#ifndef XMLAC_COMMON_EPOCH_H_
#define XMLAC_COMMON_EPOCH_H_

// Epoch-based memory reclamation in the style of the Bw-tree's garbage
// collector (docs/concurrency.md).
//
// Writers publish immutable versions of a shared structure with a single
// atomic pointer store and hand the displaced version to Retire(); readers
// bracket every traversal with Pin()/Unpin() (usually via EpochGuard).  A
// retired object is destroyed only once every slot pinned at the time of
// its retirement has unpinned — so a reader that loaded the old pointer
// under its pin can keep dereferencing it lock-free.
//
// Protocol (all epoch loads/stores are seq_cst; see docs/concurrency.md
// for the interleaving argument):
//
//   writer: store new version pointer            (publication)
//           stamp = Advance()                    (global epoch += 1)
//           Retire(old, stamp) ; Collect()
//   reader: e = Pin()        -- announces e = global epoch in a TLS slot
//           load version pointer, traverse
//           Unpin()
//
// Collect() frees a retiree iff stamp <= min(pinned epochs).  Any reader
// that could still hold the retired pointer pinned *before* the advance,
// i.e. with epoch <= stamp - 1 < stamp, and therefore blocks reclamation
// until it unpins.  A reader pinned at >= stamp read the global counter
// after the advance, which (seq_cst) is after the publication store, so
// its subsequent pointer load observes the replacement, never the retiree
// — which is why equality does not block.
//
// Pins nest: an inner Pin() on an already-pinned thread keeps the outer
// epoch (a depth counter, touched only by the owning thread).  Slots are
// co-owned by the manager and a thread_local cache so neither a dying
// thread nor a dying manager leaves the other with a dangling slot;
// Collect() prunes slots whose thread has exited.
//
// This header is dependency-free (common/ must not depend on obs/); the
// call sites report pins/advances/reclaims to the metrics registry.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace xmlac {

class EpochManager {
 public:
  static constexpr uint64_t kUnpinned = ~uint64_t{0};

  struct Stats {
    uint64_t pins = 0;       // Pin() calls that actually pinned (depth 0->1)
    uint64_t advances = 0;   // global epoch increments
    uint64_t retired = 0;    // objects handed to Retire()
    uint64_t reclaimed = 0;  // retired objects destroyed by Collect()
    uint64_t live = 0;       // retired but not yet reclaimed
  };

  EpochManager() : id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {}
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;
  // Destroying the manager drops the retire list (freeing everything on
  // it); callers must ensure no reader is pinned-and-traversing by then.
  ~EpochManager() = default;

  // Process-wide manager shared by every versioned structure.  Leaked so
  // thread_local slot caches destroyed after static teardown stay valid.
  static EpochManager& Global() {
    static EpochManager* const kGlobal = new EpochManager();
    return *kGlobal;
  }

  // Announces this thread as a reader of the current epoch and returns it.
  // Nested calls keep the outermost epoch.
  uint64_t Pin() {
    Slot* slot = LocalSlot();
    if (slot->depth++ == 0) {
      uint64_t e = global_.load(std::memory_order_seq_cst);
      slot->epoch.store(e, std::memory_order_seq_cst);
      pins_.fetch_add(1, std::memory_order_relaxed);
      return e;
    }
    return slot->epoch.load(std::memory_order_relaxed);
  }

  void Unpin() {
    Slot* slot = LocalSlot();
    if (slot->depth > 0 && --slot->depth == 0) {
      slot->epoch.store(kUnpinned, std::memory_order_seq_cst);
    }
  }

  bool pinned() const {
    Slot* slot = const_cast<EpochManager*>(this)->LocalSlot();
    return slot->depth > 0;
  }

  uint64_t epoch() const { return global_.load(std::memory_order_seq_cst); }

  // Bumps the global epoch; returns the new value, used to stamp retires.
  uint64_t Advance() {
    advances_.fetch_add(1, std::memory_order_relaxed);
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // Defers destruction of `obj` until no reader is pinned at an epoch
  // older than the current one.  Callers publish the replacement pointer
  // and Advance() *before* retiring (see protocol above).
  void Retire(std::shared_ptr<const void> obj) {
    if (obj == nullptr) return;
    uint64_t stamp = global_.load(std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(mu_);
    list_.push_back(Retiree{stamp, std::move(obj)});
    retired_.fetch_add(1, std::memory_order_relaxed);
  }

  // GC pass: destroys every retiree stamped at or before the oldest
  // pinned epoch (all of them when nothing is pinned) — only readers
  // pinned *before* the retiree's advance can hold it, and they announce
  // an epoch strictly below the stamp.  Also prunes slots of exited
  // threads.  Returns the number reclaimed.
  size_t Collect() {
    std::vector<std::shared_ptr<const void>> doomed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t min_pinned = kUnpinned;
      for (auto it = slots_.begin(); it != slots_.end();) {
        uint64_t e = (*it)->epoch.load(std::memory_order_seq_cst);
        if (e == kUnpinned && it->use_count() == 1) {
          it = slots_.erase(it);  // thread exited
          continue;
        }
        if (e != kUnpinned && e < min_pinned) min_pinned = e;
        ++it;
      }
      for (auto it = list_.begin(); it != list_.end();) {
        if (it->stamp <= min_pinned) {
          doomed.push_back(std::move(it->obj));
          it = list_.erase(it);
        } else {
          ++it;
        }
      }
    }
    reclaimed_.fetch_add(doomed.size(), std::memory_order_relaxed);
    return doomed.size();  // destructors run here, outside the lock
  }

  Stats stats() const {
    Stats s;
    s.pins = pins_.load(std::memory_order_relaxed);
    s.advances = advances_.load(std::memory_order_relaxed);
    s.retired = retired_.load(std::memory_order_relaxed);
    s.reclaimed = reclaimed_.load(std::memory_order_relaxed);
    s.live = s.retired - s.reclaimed;
    return s;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{kUnpinned};
    int depth = 0;  // owning thread only
  };
  struct Retiree {
    uint64_t stamp;
    std::shared_ptr<const void> obj;
  };

  Slot* LocalSlot() {
    // Keyed by manager id, not address: a new manager reusing a freed
    // address must not inherit a stale slot.  shared_ptr co-ownership
    // keeps the slot alive for whichever of {thread, manager} dies last.
    struct Cache {
      uint64_t id = 0;
      Slot* slot = nullptr;
      std::unordered_map<uint64_t, std::shared_ptr<Slot>> slots;
    };
    thread_local Cache cache;
    if (cache.id == id_ && cache.slot != nullptr) return cache.slot;
    auto it = cache.slots.find(id_);
    if (it == cache.slots.end()) {
      auto slot = std::make_shared<Slot>();
      {
        std::lock_guard<std::mutex> lock(mu_);
        slots_.push_back(slot);
      }
      it = cache.slots.emplace(id_, std::move(slot)).first;
    }
    cache.id = id_;
    cache.slot = it->second.get();
    return cache.slot;
  }

  static inline std::atomic<uint64_t> next_id_{1};

  const uint64_t id_;
  std::atomic<uint64_t> global_{1};
  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};

  std::mutex mu_;  // slot registration + retire list (writer/GC side only)
  std::vector<std::shared_ptr<Slot>> slots_;
  std::deque<Retiree> list_;
};

// RAII pin.  `EpochGuard g(EpochManager::Global());` brackets a read-side
// critical section; nesting is safe (inner guards keep the outer epoch).
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager)
      : manager_(manager), epoch_(manager.Pin()) {}
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
  ~EpochGuard() { manager_.Unpin(); }

  uint64_t epoch() const { return epoch_; }

 private:
  EpochManager& manager_;
  uint64_t epoch_;
};

}  // namespace xmlac

#endif  // XMLAC_COMMON_EPOCH_H_
