#ifndef XMLAC_COMMON_PARALLEL_H_
#define XMLAC_COMMON_PARALLEL_H_

// Minimal fork-join parallel-for.
//
// Threads are spawned per call and joined before return, so nested use
// (subject fan-out calling per-rule fan-out) cannot deadlock the way a
// shared fixed-size pool would.  The spawn cost is noise next to the work
// the engine parallelizes (XPath evaluation over whole documents); a
// persistent pool would buy nothing but the deadlock hazard.
//
// The caller's thread participates, and the caller's obs metrics registry
// is propagated to the workers (MetricsRegistry is thread-safe).  Tracers
// are NOT propagated: a Tracer is single-threaded by design, so worker
// spans are simply dropped.

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace xmlac {

inline size_t DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return hw > 16 ? 16 : hw;
}

// Runs body(i) for every i in [0, n), on up to `threads` OS threads
// (0 = DefaultParallelism()).  body must be thread-safe; iteration order is
// unspecified.  Falls back to a plain loop when n or threads is <= 1.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& body) {
  if (threads == 0) threads = DefaultParallelism();
  if (threads > n) threads = n;
  if (n == 0) return;
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  obs::MetricsRegistry* metrics = obs::CurrentMetrics();
  auto worker = [&]() {
    obs::ScopedMetrics metrics_ctx(metrics);
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // The caller participates.
  for (std::thread& t : pool) t.join();
}

}  // namespace xmlac

#endif  // XMLAC_COMMON_PARALLEL_H_
