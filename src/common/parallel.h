#ifndef XMLAC_COMMON_PARALLEL_H_
#define XMLAC_COMMON_PARALLEL_H_

// Minimal fork-join parallel-for.
//
// Threads are spawned per call and joined before return, so nested use
// (subject fan-out calling per-rule fan-out calling shard fan-out) cannot
// deadlock the way a shared fixed-size pool would.  The spawn cost is noise
// next to the work the engine parallelizes (XPath evaluation over whole
// documents); a persistent pool would buy nothing but the deadlock hazard.
//
// The caller's thread participates, and two pieces of obs context propagate
// to the spawned workers:
//   - the caller's metrics registry (MetricsRegistry is thread-safe), and
//   - the caller's WorkerRingPool, if one is installed: each spawned worker
//     claims a free SPSC event ring for the duration of the loop, so spans
//     and counters emitted inside the body reach the flight recorder
//     instead of being dropped.  Workers that find the pool empty (or no
//     pool installed) run ring-less.
//
// Work is claimed in contiguous index ranges of `grain` elements per
// fetch_add, so fine-grained loops (per-bitmap-word, per-row) do not pay
// one atomic RMW per element.  grain == 0 picks ~n/(8*threads): 8 chunks
// per worker balances skewed per-element cost against contention.

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/ring.h"

namespace xmlac {

inline size_t DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return hw > 16 ? 16 : hw;
}

// Runs body(i) for every i in [0, n), on up to `threads` OS threads
// (0 = DefaultParallelism()), claiming `grain` consecutive indices per
// atomic increment (0 = auto).  body must be thread-safe; iteration order
// is unspecified.  Falls back to a plain loop when n or threads is <= 1.
inline void ParallelFor(size_t n, size_t threads, size_t grain,
                        const std::function<void(size_t)>& body) {
  if (threads == 0) threads = DefaultParallelism();
  if (threads > n) threads = n;
  if (n == 0) return;
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (grain == 0) grain = n / (8 * threads);
  if (grain == 0) grain = 1;
  std::atomic<size_t> next{0};
  obs::MetricsRegistry* metrics = obs::CurrentMetrics();
  obs::WorkerRingPool* rings = obs::CurrentWorkerRingPool();
  auto worker = [&](bool spawned) {
    obs::ScopedMetrics metrics_ctx(metrics);
    // Only spawned threads claim a pool ring; the caller keeps its own.
    obs::ScopedWorkerRing ring_ctx(spawned ? rings : nullptr);
    for (size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
         begin < n; begin = next.fetch_add(grain, std::memory_order_relaxed)) {
      size_t end = begin + grain < n ? begin + grain : n;
      for (size_t i = begin; i < end; ++i) body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) {
    pool.emplace_back([&worker] { worker(true); });
  }
  worker(false);  // The caller participates.
  for (std::thread& t : pool) t.join();
}

// Auto-grain overload.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& body) {
  ParallelFor(n, threads, 0, body);
}

}  // namespace xmlac

#endif  // XMLAC_COMMON_PARALLEL_H_
