#ifndef XMLAC_COMMON_TIMER_H_
#define XMLAC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xmlac {

// Wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xmlac

#endif  // XMLAC_COMMON_TIMER_H_
