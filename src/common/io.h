#ifndef XMLAC_COMMON_IO_H_
#define XMLAC_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlac {

// Reads an entire file into a string.
Result<std::string> ReadFile(std::string_view path);

// Writes `contents` to `path`, replacing any existing file.
Status WriteFile(std::string_view path, std::string_view contents);

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.  `seed`
// chains partial computations: Crc32(a + b) == Crc32(b, Crc32(a)).  This is
// the checksum the WAL and checkpoint formats frame every record with.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// Crash-safe file replacement: writes to a temporary sibling, fsyncs it,
// renames it over `path`, then fsyncs the containing directory.  After a
// crash the file is either the complete old content or the complete new
// content — never a torn mix, never absent when it existed before.
Status AtomicWriteFile(std::string_view path, std::string_view contents);

// Flushes a file's data (and metadata when `data_only` is false) to stable
// storage.
Status SyncFile(std::string_view path, bool data_only = false);

// Flushes directory metadata (new/renamed/deleted entries) to stable
// storage.
Status SyncDirectory(std::string_view dir);

// Creates `dir` (and missing parents).  OK when it already exists.
Status EnsureDirectory(std::string_view dir);

// Names (not paths) of regular files directly under `dir`, sorted.
Result<std::vector<std::string>> ListFiles(std::string_view dir);

// Deletes a file; OK when already absent.
Status RemoveFileIfExists(std::string_view path);

}  // namespace xmlac

#endif  // XMLAC_COMMON_IO_H_
