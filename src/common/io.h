#ifndef XMLAC_COMMON_IO_H_
#define XMLAC_COMMON_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace xmlac {

// Reads an entire file into a string.
Result<std::string> ReadFile(std::string_view path);

// Writes `contents` to `path`, replacing any existing file.
Status WriteFile(std::string_view path, std::string_view contents);

}  // namespace xmlac

#endif  // XMLAC_COMMON_IO_H_
