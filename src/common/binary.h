#ifndef XMLAC_COMMON_BINARY_H_
#define XMLAC_COMMON_BINARY_H_

// Little-endian binary encoding helpers shared by the durable formats
// (WAL records, checkpoint files, Document arena dumps).  Writers append
// to a std::string; readers advance a bounds-checked cursor and report
// truncation/overflow through the cursor's `ok` flag instead of reading
// past the end — a torn WAL tail must parse as "incomplete", never as
// garbage values.

#include <cstdint>
#include <string>
#include <string_view>

namespace xmlac {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

// Length-prefixed string (u32 length + raw bytes).
inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Bounds-checked read cursor.  Once `ok` goes false every further Get*
// returns a zero value and leaves the cursor unchanged, so decoders can
// run a straight-line sequence of reads and check `ok` once at the end.
struct BinaryCursor {
  std::string_view data;
  size_t pos = 0;
  bool ok = true;

  explicit BinaryCursor(std::string_view d) : data(d) {}

  size_t remaining() const { return ok ? data.size() - pos : 0; }
  bool AtEnd() const { return ok && pos == data.size(); }

  bool Need(size_t n) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data[pos++]);
  }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos++])) << (8 * i);
    }
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos++])) << (8 * i);
    }
    return v;
  }

  std::string GetString() {
    uint32_t len = GetU32();
    if (!Need(len)) return std::string();
    std::string s(data.substr(pos, len));
    pos += len;
    return s;
  }
};

}  // namespace xmlac

#endif  // XMLAC_COMMON_BINARY_H_
