#ifndef XMLAC_COMMON_STATUS_H_
#define XMLAC_COMMON_STATUS_H_

// Status / Result<T> error model.
//
// The library does not throw exceptions across public API boundaries.
// Fallible operations return Status (no payload) or Result<T> (payload or
// error), in the style of RocksDB's Status and Arrow's Result.

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xmlac {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kAccessDenied,
  kUnsupported,
  kInternal,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// A Status holds either success (ok) or an error code plus message.
// Cheap to copy in the ok case (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AccessDenied(std::string msg) {
    return Status(StatusCode::kAccessDenied, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Result<T> holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression that yields Status.
#define XMLAC_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::xmlac::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

// Evaluates an expression yielding Result<T>; on error returns the Status,
// otherwise assigns the value into `lhs`.
#define XMLAC_ASSIGN_OR_RETURN(lhs, expr)          \
  auto XMLAC_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!XMLAC_CONCAT_(_res_, __LINE__).ok())        \
    return XMLAC_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(XMLAC_CONCAT_(_res_, __LINE__)).value()

#define XMLAC_CONCAT_INNER_(a, b) a##b
#define XMLAC_CONCAT_(a, b) XMLAC_CONCAT_INNER_(a, b)

}  // namespace xmlac

#endif  // XMLAC_COMMON_STATUS_H_
