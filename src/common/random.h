#ifndef XMLAC_COMMON_RANDOM_H_
#define XMLAC_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace xmlac {

// Deterministic, seedable PRNG (splitmix64 core).  Used by the workload
// generators so documents and policies are reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Lowercase ASCII word of the given length.
  std::string Word(int length) {
    std::string s;
    s.reserve(static_cast<size_t>(length));
    for (int i = 0; i < length; ++i) {
      s.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace xmlac

#endif  // XMLAC_COMMON_RANDOM_H_
