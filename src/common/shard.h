#ifndef XMLAC_COMMON_SHARD_H_
#define XMLAC_COMMON_SHARD_H_

// Exchange-style shard planner (docs/performance.md, "Shard-parallel
// execution").
//
// Every parallel site in the engine follows the same shape: partition an
// ordered input (a start-sorted context set, the words of a node bitmap,
// the row range of a table, the top-level subtrees of a document) into
// contiguous ranges, run each range on a ParallelFor worker, and merge the
// per-range outputs by concatenating them in range order.  Because every
// shard key is aligned with the output order — interval start labels are
// pre-order, bitmap words own disjoint id ranges, row indices are scan
// order — concatenation IS the order-preserving merge, and the sharded
// result is byte-identical to the serial one (the differential harness
// checks this on every fuzz sweep).
//
// PlanShards is the one policy point: it decides between a single serial
// range and k contiguous ranges based on the input size, the configured
// work threshold, and DefaultParallelism().

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/parallel.h"

namespace xmlac {

// A half-open range [begin, end) of the sharded input.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

// Per-site sharding knobs, threaded through EvaluatorOptions /
// ControllerOptions / ServerOptions so the differential harness can run
// every path sharded-vs-serial.
struct ShardConfig {
  // Master toggle.  Disabled => PlanShards always returns one range.
  bool enabled = true;
  // Worker count; 0 = DefaultParallelism().
  size_t threads = 0;
  // Inputs smaller than this stay serial.  0 = use the call site's default
  // (each site knows its own per-element cost; a bitmap word is ~1ns of
  // work, an XPath context node can be microseconds).
  size_t min_work = 0;

  size_t ResolvedThreads() const {
    return threads == 0 ? DefaultParallelism() : threads;
  }
};

// Partitions [0, n) into contiguous ranges: one range when sharding is
// disabled or n is below the work threshold, otherwise up to
// config.ResolvedThreads() ranges of near-equal size covering [0, n) in
// order.  Returns an empty vector when n == 0.
inline std::vector<ShardRange> PlanShards(size_t n, const ShardConfig& config,
                                          size_t default_min_work = 1) {
  std::vector<ShardRange> out;
  if (n == 0) return out;
  size_t min_work = config.min_work != 0 ? config.min_work : default_min_work;
  size_t k = 1;
  if (config.enabled && n >= min_work) k = config.ResolvedThreads();
  if (k > n) k = n;
  if (k == 0) k = 1;
  size_t chunk = (n + k - 1) / k;
  out.reserve(k);
  for (size_t begin = 0; begin < n; begin += chunk) {
    out.push_back(ShardRange{begin, std::min(begin + chunk, n)});
  }
  return out;
}

}  // namespace xmlac

#endif  // XMLAC_COMMON_SHARD_H_
