#ifndef XMLAC_COMMON_LOGGING_H_
#define XMLAC_COMMON_LOGGING_H_

// Minimal check/log facilities.  XMLAC_CHECK aborts on violated invariants —
// these guard programmer errors, not user input (user input errors travel as
// Status).

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace xmlac::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

}  // namespace xmlac::internal

#define XMLAC_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) ::xmlac::internal::CheckFailed(__FILE__, __LINE__, #cond, \
                                                "");                       \
  } while (0)

#define XMLAC_CHECK_MSG(cond, msg)                                  \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream _oss;                                      \
      _oss << msg;                                                  \
      ::xmlac::internal::CheckFailed(__FILE__, __LINE__, #cond,     \
                                     _oss.str());                   \
    }                                                               \
  } while (0)

#define XMLAC_DCHECK(cond) assert(cond)

#endif  // XMLAC_COMMON_LOGGING_H_
