#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace xmlac {

namespace {

// Directory component of `path` ("." when none).
std::string DirOf(std::string_view path) {
  size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) return ".";
  if (slash == 0) return "/";
  return std::string(path.substr(0, slash));
}

Status SyncFd(int fd, bool data_only, const std::string& what) {
#if defined(__linux__)
  int rc = data_only ? ::fdatasync(fd) : ::fsync(fd);
#else
  (void)data_only;
  int rc = ::fsync(fd);
#endif
  if (rc != 0) {
    return Status::Internal("fsync failed on '" + what + "': " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFile(std::string_view path) {
  std::string p(path);
  std::FILE* f = std::fopen(p.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + p + "' for reading");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read error on '" + p + "'");
  return out;
}

Status WriteFile(std::string_view path, std::string_view contents) {
  std::string p(path);
  std::FILE* f = std::fopen(p.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + p + "' for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool bad = written != contents.size();
  if (std::fclose(f) != 0) bad = true;
  if (bad) return Status::Internal("write error on '" + p + "'");
  return Status::OK();
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status AtomicWriteFile(std::string_view path, std::string_view contents) {
  std::string p(path);
  std::string tmp = p + ".tmp";
  {
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::InvalidArgument("cannot open '" + tmp +
                                     "' for writing: " + std::strerror(errno));
    }
    const char* data = contents.data();
    size_t left = contents.size();
    while (left > 0) {
      ssize_t n = ::write(fd, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        return Status::Internal("write error on '" + tmp +
                                "': " + std::strerror(errno));
      }
      data += n;
      left -= static_cast<size_t>(n);
    }
    Status synced = SyncFd(fd, /*data_only=*/false, tmp);
    if (::close(fd) != 0 && synced.ok()) {
      synced = Status::Internal("close failed on '" + tmp + "'");
    }
    if (!synced.ok()) {
      ::unlink(tmp.c_str());
      return synced;
    }
  }
  if (std::rename(tmp.c_str(), p.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("rename '" + tmp + "' -> '" + p +
                            "' failed: " + std::strerror(errno));
  }
  return SyncDirectory(DirOf(path));
}

Status SyncFile(std::string_view path, bool data_only) {
  std::string p(path);
  int fd = ::open(p.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + p + "' to sync");
  }
  Status out = SyncFd(fd, data_only, p);
  ::close(fd);
  return out;
}

Status SyncDirectory(std::string_view dir) {
  std::string d(dir);
  int fd = ::open(d.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::NotFound("cannot open directory '" + d + "' to sync");
  }
  Status out = SyncFd(fd, /*data_only=*/false, d);
  ::close(fd);
  return out;
}

Status EnsureDirectory(std::string_view dir) {
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(dir), ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + std::string(dir) +
                            "': " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListFiles(std::string_view dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(std::filesystem::path(dir), ec);
  if (ec) {
    return Status::NotFound("cannot list directory '" + std::string(dir) +
                            "': " + ec.message());
  }
  std::vector<std::string> out;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) out.push_back(entry.path().filename());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status RemoveFileIfExists(std::string_view path) {
  std::string p(path);
  if (::unlink(p.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal("cannot remove '" + p +
                            "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace xmlac
