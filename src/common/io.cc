#include "common/io.h"

#include <cstdio>

namespace xmlac {

Result<std::string> ReadFile(std::string_view path) {
  std::string p(path);
  std::FILE* f = std::fopen(p.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + p + "' for reading");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read error on '" + p + "'");
  return out;
}

Status WriteFile(std::string_view path, std::string_view contents) {
  std::string p(path);
  std::FILE* f = std::fopen(p.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + p + "' for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  bool bad = written != contents.size();
  if (std::fclose(f) != 0) bad = true;
  if (bad) return Status::Internal("write error on '" + p + "'");
  return Status::OK();
}

}  // namespace xmlac
