#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace xmlac {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StrTrim(std::string_view input) {
  size_t b = 0;
  size_t e = input.size();
  while (b < e && std::isspace(static_cast<unsigned char>(input[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(input[e - 1]))) --e;
  return input.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace xmlac
