#ifndef XMLAC_COMMON_STRINGS_H_
#define XMLAC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xmlac {

// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// "1.2 KB", "3.4 MB", ... (powers of 1024).
std::string HumanBytes(uint64_t bytes);

// Escapes &, <, >, ", ' for embedding in XML text/attributes.
std::string XmlEscape(std::string_view s);

}  // namespace xmlac

#endif  // XMLAC_COMMON_STRINGS_H_
