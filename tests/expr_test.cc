#include "reldb/expr.h"

#include <gtest/gtest.h>

namespace xmlac::reldb {
namespace {

TEST(ExprTest, FactoryKinds) {
  EXPECT_EQ(Expr::Literal(Value::Int(1))->kind, ExprKind::kLiteral);
  EXPECT_EQ(Expr::Column("t", "c")->kind, ExprKind::kColumnRef);
  auto cmp = Expr::Compare(CompareOp::kLt, Expr::Column("t", "a"),
                           Expr::Literal(Value::Int(5)));
  EXPECT_EQ(cmp->kind, ExprKind::kComparison);
  EXPECT_EQ(cmp->op, CompareOp::kLt);
  ASSERT_EQ(cmp->children.size(), 2u);
}

TEST(ExprTest, ToStringForms) {
  auto e = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Column("a", "id"),
                    Expr::Column("b", "pid")),
      Expr::Not(Expr::IsNull(Expr::Column("b", "v"))));
  EXPECT_EQ(e->ToString(), "(a.id = b.pid AND NOT (b.v IS NULL))");
  auto lit = Expr::Compare(CompareOp::kNe, Expr::Column("", "s"),
                           Expr::Literal(Value::Str("it's")));
  EXPECT_EQ(lit->ToString(), "s <> 'it''s'");
  auto orx = Expr::Or(Expr::IsNull(Expr::Column("t", "x")),
                      Expr::Compare(CompareOp::kGe, Expr::Column("t", "x"),
                                    Expr::Literal(Value::Real(2.5))));
  EXPECT_EQ(orx->ToString(), "(t.x IS NULL OR t.x >= 2.5)");
}

TEST(ExprTest, CompareOpNames) {
  EXPECT_EQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_EQ(CompareOpName(CompareOp::kNe), "<>");
  EXPECT_EQ(CompareOpName(CompareOp::kLt), "<");
  EXPECT_EQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_EQ(CompareOpName(CompareOp::kGt), ">");
  EXPECT_EQ(CompareOpName(CompareOp::kGe), ">=");
}

TEST(ExprTest, CloneIsDeep) {
  auto e = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::Column("a", "x"),
                    Expr::Literal(Value::Int(3))),
      Expr::Compare(CompareOp::kGt, Expr::Column("a", "y"),
                    Expr::Literal(Value::Str("q"))));
  ExprPtr copy = e->Clone();
  EXPECT_EQ(copy->ToString(), e->ToString());
  // Mutating the copy leaves the original untouched.
  copy->children[0]->op = CompareOp::kNe;
  EXPECT_NE(copy->ToString(), e->ToString());
}

TEST(ExprTest, CollectConjunctsFlattensAndOnly) {
  auto e = Expr::And(
      Expr::And(Expr::Compare(CompareOp::kEq, Expr::Column("a", "x"),
                              Expr::Literal(Value::Int(1))),
                Expr::Compare(CompareOp::kEq, Expr::Column("a", "y"),
                              Expr::Literal(Value::Int(2)))),
      Expr::Or(Expr::Compare(CompareOp::kEq, Expr::Column("a", "z"),
                             Expr::Literal(Value::Int(3))),
               Expr::Compare(CompareOp::kEq, Expr::Column("a", "w"),
                             Expr::Literal(Value::Int(4)))));
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*e, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);  // two comparisons + the OR as one unit
  EXPECT_EQ(conjuncts[2]->kind, ExprKind::kOr);
}

TEST(ExprTest, CollectConjunctsSingleton) {
  auto e = Expr::Literal(Value::Int(1));
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*e, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 1u);
  EXPECT_EQ(conjuncts[0], e.get());
}

}  // namespace
}  // namespace xmlac::reldb
