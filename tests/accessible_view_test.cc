#include <gtest/gtest.h>

#include "engine/access_controller.h"
#include "engine/annotator.h"
#include "engine/native_backend.h"
#include "policy/semantics.h"
#include "tests/testdata.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

class AccessibleViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(dtd.ok() && doc.ok());
    doc_ = std::move(*doc);
    ASSERT_TRUE(backend_.Load(*dtd, doc_).ok());
  }

  void Annotate(const char* policy_text) {
    auto p = policy::ParsePolicy(policy_text);
    ASSERT_TRUE(p.ok()) << p.status();
    auto r = AnnotateFull(&backend_, *p);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  xml::Document doc_;
  NativeXmlBackend backend_;
};

TEST_F(AccessibleViewTest, DenyDefaultRootInaccessibleGivesEmptyView) {
  Annotate(testdata::kHospitalPolicy);
  // The hospital policy never grants the root: the view is empty (every
  // accessible node sits below an inaccessible ancestor).
  xml::Document view = backend_.AccessibleView();
  EXPECT_TRUE(view.empty());
}

TEST_F(AccessibleViewTest, AllowDefaultViewPrunesDeniedSubtrees) {
  Annotate(R"(
default allow
conflict deny
deny //treatment
deny //staffinfo
)");
  xml::Document view = backend_.AccessibleView();
  ASSERT_FALSE(view.empty());
  EXPECT_TRUE(xpath::Evaluate(*xpath::ParsePath("//treatment"), view).empty());
  EXPECT_TRUE(xpath::Evaluate(*xpath::ParsePath("//staffinfo"), view).empty());
  EXPECT_TRUE(xpath::Evaluate(*xpath::ParsePath("//bill"), view).empty());
  // Patients and their names survive.
  EXPECT_EQ(xpath::Evaluate(*xpath::ParsePath("//patient"), view).size(), 3u);
  EXPECT_EQ(xpath::Evaluate(*xpath::ParsePath("//patient/name"), view).size(),
            3u);
  // Text content carried over.
  auto psn = xpath::Evaluate(*xpath::ParsePath("//patient/psn"), view);
  ASSERT_FALSE(psn.empty());
  EXPECT_EQ(view.DirectText(psn[0]), "033");
}

TEST_F(AccessibleViewTest, ViewStripsSignAttributes) {
  Annotate("default allow\nconflict deny\ndeny //psn\n");
  xml::Document view = backend_.AccessibleView();
  for (xml::NodeId id : view.AllElements()) {
    EXPECT_FALSE(view.GetAttribute(id, "sign").has_value());
  }
}

TEST_F(AccessibleViewTest, AccessibleNodeUnderDeniedAncestorExcluded) {
  Annotate(R"(
default allow
conflict deny
deny //patient[psn="033"]
allow //patient[psn="033"]/name
)");
  // deny-overrides: the patient is denied, so even though its name is
  // explicitly allowed, the name has no accessible path from the root.
  xml::Document view = backend_.AccessibleView();
  auto names = xpath::Evaluate(*xpath::ParsePath("//patient/name"), view);
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(AccessibleViewTest, ViewSerializesAndReparses) {
  Annotate("default allow\nconflict deny\ndeny //experimental\n");
  xml::Document view = backend_.AccessibleView();
  std::string xml = xml::Serialize(view);
  auto reparsed = xml::ParseDocument(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->alive_count(), view.alive_count());
}

TEST_F(AccessibleViewTest, FullyAccessibleViewEqualsDocumentModuloSigns) {
  Annotate("default allow\nconflict deny\n");
  xml::Document view = backend_.AccessibleView();
  EXPECT_EQ(xml::Serialize(view), xml::Serialize(doc_));
}

TEST_F(AccessibleViewTest, UnloadedBackendGivesEmptyView) {
  NativeXmlBackend fresh;
  EXPECT_TRUE(fresh.AccessibleView().empty());
}

}  // namespace
}  // namespace xmlac::engine
