// Durability subsystem tests (src/storage/, docs/durability.md):
// segment framing and torn-tail scanning, WAL append/reopen/truncate,
// checkpoint encode/decode with corruption fallback, and end-to-end crash
// recovery including the randomized crash-point fuzz harness.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/io.h"
#include "engine/multi_subject.h"
#include "engine/native_backend.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/segment.h"
#include "storage/wal.h"
#include "testing/serve_fuzz.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlac::storage {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/xmlac_storage_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ----- Segment framing ---------------------------------------------------

TEST(SegmentTest, FileNameRoundTrip) {
  uint64_t seq = 0;
  EXPECT_EQ(SegmentFileName(1), "wal-00000001.log");
  ASSERT_TRUE(ParseSegmentFileName(SegmentFileName(42), &seq));
  EXPECT_EQ(seq, 42u);
  ASSERT_TRUE(ParseSegmentFileName(SegmentFileName(99999999), &seq));
  EXPECT_EQ(seq, 99999999u);
  EXPECT_FALSE(ParseSegmentFileName("checkpoint-000000000001.ckpt", &seq));
  EXPECT_FALSE(ParseSegmentFileName("wal-.log", &seq));
  EXPECT_FALSE(ParseSegmentFileName("wal-0000000x.log", &seq));
  EXPECT_FALSE(ParseSegmentFileName("wal-00000001.log.tmp", &seq));
}

TEST(SegmentTest, FrameRoundTrip) {
  std::string bytes;
  AppendFrame(&bytes, 7, "alpha");
  AppendFrame(&bytes, 8, "");
  std::string binary("\x00\x01\xff\xfe", 4);
  AppendFrame(&bytes, 9, binary);
  SegmentScan scan = ScanSegment(bytes);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].marker, 7u);
  EXPECT_EQ(scan.records[0].payload, "alpha");
  EXPECT_EQ(scan.records[1].marker, 8u);
  EXPECT_TRUE(scan.records[1].payload.empty());
  EXPECT_EQ(scan.records[2].marker, 9u);
  EXPECT_EQ(scan.records[2].payload, binary);
}

// The recovery invariant, exhaustively: a segment truncated at EVERY byte
// offset parses as a complete prefix of the original records plus a clean
// truncation point — never as corrupt or invented records.
TEST(SegmentTest, TruncationAtEveryByteOffsetYieldsCleanPrefix) {
  std::string bytes;
  std::vector<size_t> boundaries{0};  // frame end offsets
  std::vector<std::string> payloads;
  for (int i = 0; i < 6; ++i) {
    std::string payload(static_cast<size_t>(i * 7), 'a' + static_cast<char>(i));
    payload += "rec" + std::to_string(i);
    payloads.push_back(payload);
    AppendFrame(&bytes, 100 + static_cast<uint64_t>(i), payload);
    boundaries.push_back(bytes.size());
  }
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    SegmentScan scan = ScanSegment(std::string_view(bytes).substr(0, cut));
    // Complete frames strictly before the cut survive.
    size_t want = 0;
    while (want + 1 < boundaries.size() && boundaries[want + 1] <= cut) ++want;
    ASSERT_EQ(scan.records.size(), want) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, boundaries[want]) << "cut at " << cut;
    EXPECT_EQ(scan.clean, boundaries[want] == cut) << "cut at " << cut;
    for (size_t r = 0; r < want; ++r) {
      EXPECT_EQ(scan.records[r].marker, 100 + r);
      EXPECT_EQ(scan.records[r].payload, payloads[r]);
    }
  }
}

// Flipping any single byte never yields a record that differs from the
// original at that position — the scan stops at or before the damage.
TEST(SegmentTest, BitRotNeverYieldsCorruptRecords) {
  std::string bytes;
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back("payload-" + std::to_string(i));
    AppendFrame(&bytes, static_cast<uint64_t>(i + 1), payloads.back());
  }
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x41);
    SegmentScan scan = ScanSegment(damaged);
    ASSERT_LE(scan.records.size(), payloads.size());
    for (size_t r = 0; r < scan.records.size(); ++r) {
      // Any record the scan does return must be one of the originals,
      // in order (the flip may damage only frames at or after its
      // offset).
      EXPECT_EQ(scan.records[r].marker, r + 1) << "flip at " << at;
      EXPECT_EQ(scan.records[r].payload, payloads[r]) << "flip at " << at;
    }
  }
}

// ----- WAL ---------------------------------------------------------------

// A batch record with the given epoch and no ops — a decodable payload
// for WAL-level tests that don't care about record contents.
std::string EpochRecord(uint64_t epoch) {
  BatchRecord record;
  record.epoch = epoch;
  return EncodeBatchRecord(record);
}

TEST(WalTest, AppendReopenRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  {
    WalOptions opt;
    opt.dir = dir;
    opt.level = DurabilityLevel::kNone;
    auto wal = Wal::Open(opt);
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE((*wal)->Append(1, EpochRecord(1)).ok());
    ASSERT_TRUE((*wal)->Append(2, EpochRecord(2)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    EXPECT_EQ((*wal)->records_appended(), 2u);
  }
  // A reopen starts a fresh segment after the existing ones and appends
  // there; the directory reads back in order across segments.
  {
    WalOptions opt;
    opt.dir = dir;
    opt.level = DurabilityLevel::kNone;
    auto wal = Wal::Open(opt);
    ASSERT_TRUE(wal.ok()) << wal.status();
    EXPECT_GT((*wal)->current_segment_seq(), 1u);
    ASSERT_TRUE((*wal)->Append(3, EpochRecord(3)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto contents = ReadWalDir(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->segments, 2u);
  EXPECT_EQ(contents->torn_segments, 0u);
  EXPECT_FALSE(contents->stopped_early);
  ASSERT_EQ(contents->records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(contents->records[i].batch.epoch, i + 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(WalTest, TornTailTruncatedOnReopen) {
  std::string dir = FreshDir("wal_torn");
  {
    WalOptions opt;
    opt.dir = dir;
    opt.level = DurabilityLevel::kNone;
    auto wal = Wal::Open(opt);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, EpochRecord(1)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Simulate a torn append: garbage bytes at the tail of the newest
  // segment (looks like a frame header pointing past EOF).
  std::string segment_path = dir + "/" + SegmentFileName(1);
  auto before = ReadFile(segment_path);
  ASSERT_TRUE(before.ok());
  std::string torn = *before + std::string("\xff\xff\xff\x7f tail", 9);
  ASSERT_TRUE(WriteFile(segment_path, torn).ok());
  {
    WalOptions opt;
    opt.dir = dir;
    opt.level = DurabilityLevel::kNone;
    auto wal = Wal::Open(opt);
    ASSERT_TRUE(wal.ok()) << wal.status();
  }
  auto after = ReadFile(segment_path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before) << "open must truncate the torn tail in place";
  auto contents = ReadWalDir(dir);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].kind, RecordKind::kBatch);
  EXPECT_EQ(contents->records[0].batch.epoch, 1u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, SegmentRollingAndTruncateThrough) {
  std::string dir = FreshDir("wal_roll");
  WalOptions opt;
  opt.dir = dir;
  opt.level = DurabilityLevel::kNone;
  opt.segment_bytes = 64;  // force a roll every couple of records
  auto wal = Wal::Open(opt);
  ASSERT_TRUE(wal.ok());
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    ASSERT_TRUE((*wal)->Append(epoch, EpochRecord(epoch)).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_GT((*wal)->current_segment_seq(), 2u);

  auto files_before = ListFiles(dir);
  ASSERT_TRUE(files_before.ok());
  size_t segments_before = files_before->size();

  // Truncation drops sealed segments whose every record is <= the marker;
  // the open segment survives regardless.
  ASSERT_TRUE((*wal)->TruncateThrough(5).ok());
  auto files_after = ListFiles(dir);
  ASSERT_TRUE(files_after.ok());
  EXPECT_LT(files_after->size(), segments_before);

  auto contents = ReadWalDir(dir);
  ASSERT_TRUE(contents.ok());
  ASSERT_FALSE(contents->records.empty());
  // Everything with marker > 5 must still be there, contiguously.
  uint64_t max_epoch = 0;
  for (const WalRecord& record : contents->records) {
    max_epoch = std::max(max_epoch, record.batch.epoch);
  }
  EXPECT_EQ(max_epoch, 10u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, CrashHookDropsLaterAppendsSilently) {
  std::string dir = FreshDir("wal_crash");
  WalOptions opt;
  opt.dir = dir;
  opt.level = DurabilityLevel::kNone;
  opt.crash_after_records = 2;
  auto wal = Wal::Open(opt);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, EpochRecord(1)).ok());
  ASSERT_TRUE((*wal)->Append(2, EpochRecord(2)).ok());
  EXPECT_FALSE((*wal)->crashed());
  // The third append hits the crash point: it reports success (the caller
  // must behave exactly as if the process died) but persists nothing.
  ASSERT_TRUE((*wal)->Append(3, EpochRecord(3)).ok());
  EXPECT_TRUE((*wal)->crashed());
  ASSERT_TRUE((*wal)->Append(4, EpochRecord(4)).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  // Truncation must refuse to run post-crash.
  ASSERT_TRUE((*wal)->TruncateThrough(99).ok());
  wal->reset();

  auto contents = ReadWalDir(dir);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, RealIoFailureStaysAnError) {
  std::string dir = FreshDir("wal_io_fail");
  WalOptions opt;
  opt.dir = dir;
  opt.level = DurabilityLevel::kNone;
  opt.segment_bytes = 64;  // roll after a couple of records
  auto wal = Wal::Open(opt);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, EpochRecord(1)).ok());
  // Pull the directory out from under the log: appends to the already-open
  // segment still land, but the next segment roll cannot create its file —
  // a real IO failure, not a simulated crash.
  std::filesystem::remove_all(dir);
  Status first = Status::OK();
  for (uint64_t epoch = 2; epoch <= 16 && first.ok(); ++epoch) {
    first = (*wal)->Append(epoch, EpochRecord(epoch));
  }
  ASSERT_FALSE(first.ok()) << "segment roll into a missing dir must fail";
  EXPECT_TRUE((*wal)->crashed());
  // Unlike the simulated-crash hook, the error is sticky: every later
  // append and sync keeps reporting it, so no client is ever told a
  // post-failure commit is durable.
  Status again = (*wal)->Append(99, EpochRecord(99));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.message(), first.message());
  EXPECT_FALSE((*wal)->Sync().ok());
  // Truncation still refuses to run on a crashed log.
  EXPECT_TRUE((*wal)->TruncateThrough(99).ok());
}

TEST(WalTest, OversizedPayloadRejectedWithoutPoisoning) {
  std::string dir = FreshDir("wal_oversize");
  WalOptions opt;
  opt.dir = dir;
  opt.level = DurabilityLevel::kNone;
  auto wal = Wal::Open(opt);
  ASSERT_TRUE(wal.ok());
  // A frame's u32 length prefix covers [u64 marker][payload]; anything the
  // prefix cannot represent must be rejected before any bytes are written.
  // The size check fires before the payload is read, so a sized view over
  // a one-byte buffer exercises it without allocating 4GiB.
  const char byte = 'x';
  std::string_view huge(&byte, static_cast<size_t>(UINT32_MAX) - 7);
  Status s = (*wal)->Append(1, huge);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Rejection is not corruption: the log stays healthy and appendable.
  EXPECT_FALSE((*wal)->crashed());
  ASSERT_TRUE((*wal)->Append(1, EpochRecord(1)).ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  wal->reset();
  auto contents = ReadWalDir(dir);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 1u);
  std::filesystem::remove_all(dir);
}

// Appends (with frequent segment rolls) racing TruncateThrough from a
// second thread — the checkpointer-vs-writer interleaving.  TSan verifies
// the locking; without it this still smoke-tests map/file consistency.
TEST(WalTest, ConcurrentAppendAndTruncate) {
  std::string dir = FreshDir("wal_concurrent");
  WalOptions opt;
  opt.dir = dir;
  opt.level = DurabilityLevel::kNone;
  opt.segment_bytes = 64;  // roll every couple of records
  auto wal = Wal::Open(opt);
  ASSERT_TRUE(wal.ok());
  constexpr uint64_t kRecords = 400;
  std::thread appender([&wal] {
    for (uint64_t epoch = 1; epoch <= kRecords; ++epoch) {
      ASSERT_TRUE((*wal)->Append(epoch, EpochRecord(epoch)).ok());
    }
  });
  for (int i = 0; i < 100; ++i) {
    uint64_t marker = (*wal)->records_appended();
    ASSERT_TRUE((*wal)->TruncateThrough(marker).ok());
  }
  appender.join();
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ((*wal)->records_appended(), kRecords);
  wal->reset();
  // Whatever survived truncation must read back as a contiguous tail
  // ending at the last record.
  auto contents = ReadWalDir(dir);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_FALSE(contents->records.empty());
  EXPECT_EQ(contents->records.back().batch.epoch, kRecords);
  for (size_t i = 1; i < contents->records.size(); ++i) {
    EXPECT_EQ(contents->records[i].batch.epoch,
              contents->records[i - 1].batch.epoch + 1);
  }
  std::filesystem::remove_all(dir);
}

TEST(WalTest, DurabilityLevelNames) {
  EXPECT_EQ(DurabilityLevelName(DurabilityLevel::kNone), "none");
  EXPECT_EQ(DurabilityLevelName(DurabilityLevel::kFdatasync), "fdatasync");
  EXPECT_EQ(DurabilityLevelName(DurabilityLevel::kFsync), "fsync");
  EXPECT_EQ(ParseDurabilityLevel("fsync"), DurabilityLevel::kFsync);
  EXPECT_EQ(ParseDurabilityLevel("fdatasync"), DurabilityLevel::kFdatasync);
  EXPECT_EQ(ParseDurabilityLevel("none"), DurabilityLevel::kNone);
  EXPECT_FALSE(ParseDurabilityLevel("o_direct").has_value());
}

// ----- Record payload encoding -------------------------------------------

TEST(RecordTest, InstallRoundTrip) {
  InstallRecord install;
  install.epoch = 1;
  install.rule_cache_epoch = 17;
  install.dtd_text = "<!ELEMENT r (#PCDATA)>";
  install.master_binary = std::string("\x00\x01\x02", 3);
  SubjectState subject;
  subject.name = "alice";
  subject.policy_text = "policy text";
  subject.default_sign = '+';
  subject.marked = {3, 5, 8};
  install.subjects.push_back(subject);

  auto decoded = DecodeRecord(EncodeInstallRecord(install));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->kind, RecordKind::kInstall);
  EXPECT_EQ(decoded->install.epoch, 1u);
  EXPECT_EQ(decoded->install.rule_cache_epoch, 17u);
  EXPECT_EQ(decoded->install.dtd_text, install.dtd_text);
  EXPECT_EQ(decoded->install.master_binary, install.master_binary);
  ASSERT_EQ(decoded->install.subjects.size(), 1u);
  EXPECT_EQ(decoded->install.subjects[0].name, "alice");
  EXPECT_EQ(decoded->install.subjects[0].default_sign, '+');
  EXPECT_EQ(decoded->install.subjects[0].marked, subject.marked);
}

TEST(RecordTest, BatchRoundTrip) {
  BatchRecord batch;
  batch.epoch = 9;
  batch.ops.push_back(engine::BatchOp::Delete("//a[b=\"c\"]"));
  batch.ops.push_back(engine::BatchOp::Insert("//a", "<b>x</b>"));
  batch.deltas["alice"] = engine::SubjectDelta{{1, 2}, {3}};
  batch.deltas["bob"] = engine::SubjectDelta{{}, {7}};

  auto decoded = DecodeRecord(EncodeBatchRecord(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->kind, RecordKind::kBatch);
  EXPECT_EQ(decoded->batch.epoch, 9u);
  ASSERT_EQ(decoded->batch.ops.size(), 2u);
  EXPECT_EQ(decoded->batch.ops[0].kind, engine::BatchOp::Kind::kDelete);
  EXPECT_EQ(decoded->batch.ops[0].xpath, "//a[b=\"c\"]");
  EXPECT_EQ(decoded->batch.ops[1].kind, engine::BatchOp::Kind::kInsert);
  EXPECT_EQ(decoded->batch.ops[1].fragment_xml, "<b>x</b>");
  ASSERT_EQ(decoded->batch.deltas.size(), 2u);
  EXPECT_EQ(decoded->batch.deltas.at("alice").marked,
            (std::vector<engine::UniversalId>{1, 2}));
  EXPECT_EQ(decoded->batch.deltas.at("alice").cleared,
            (std::vector<engine::UniversalId>{3}));
  EXPECT_EQ(decoded->batch.deltas.at("bob").cleared,
            (std::vector<engine::UniversalId>{7}));
}

TEST(RecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeRecord("").ok());
  EXPECT_FALSE(DecodeRecord("\x07garbage").ok());
  // A valid record with trailing bytes is rejected (AtEnd check).
  std::string padded = EncodeBatchRecord(BatchRecord{});
  padded += "x";
  EXPECT_FALSE(DecodeRecord(padded).ok());
}

// ----- Checkpoints -------------------------------------------------------

CheckpointData SampleCheckpoint(uint64_t epoch) {
  CheckpointData data;
  data.epoch = epoch;
  data.rule_cache_epoch = epoch + 1;
  data.dtd_text = "<!ELEMENT r (#PCDATA)>";
  data.master_binary = "binary-master-" + std::to_string(epoch);
  data.labels.push_back(xpath::IntervalLabel{1, 100, 0});
  data.labels.push_back(xpath::IntervalLabel{2, 50, 1});
  SubjectState subject;
  subject.name = "alice";
  subject.policy_text = "p";
  subject.default_sign = '-';
  subject.marked = {4, 9};
  data.subjects.push_back(subject);
  return data;
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  CheckpointData data = SampleCheckpoint(12);
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(data));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->epoch, 12u);
  EXPECT_EQ(decoded->rule_cache_epoch, 13u);
  EXPECT_EQ(decoded->master_binary, data.master_binary);
  ASSERT_EQ(decoded->labels.size(), 2u);
  EXPECT_EQ(decoded->labels[1].start, 2u);
  EXPECT_EQ(decoded->labels[1].end, 50u);
  EXPECT_EQ(decoded->labels[1].level, 1u);
  ASSERT_EQ(decoded->subjects.size(), 1u);
  EXPECT_EQ(decoded->subjects[0].marked,
            (std::vector<engine::UniversalId>{4, 9}));
}

TEST(CheckpointTest, DecodeRejectsCorruption) {
  std::string bytes = EncodeCheckpoint(SampleCheckpoint(3));
  EXPECT_TRUE(DecodeCheckpoint(bytes).ok());
  for (size_t at : {size_t{0}, size_t{5}, bytes.size() / 2,
                    bytes.size() - 1}) {
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x10);
    EXPECT_FALSE(DecodeCheckpoint(damaged).ok()) << "flip at " << at;
  }
  EXPECT_FALSE(DecodeCheckpoint(bytes.substr(0, bytes.size() - 3)).ok());
  EXPECT_FALSE(DecodeCheckpoint("").ok());
}

TEST(CheckpointTest, NewestValidWinsAndCorruptFallsBack) {
  std::string dir = FreshDir("ckpt");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(WriteCheckpoint(dir, SampleCheckpoint(5)).ok());
  ASSERT_TRUE(WriteCheckpoint(dir, SampleCheckpoint(9)).ok());
  auto newest = ReadNewestCheckpoint(dir);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->epoch, 9u);

  // Corrupt the newest file: reads fall back to the older valid one.
  std::string newest_path = dir + "/" + CheckpointFileName(9);
  auto bytes = ReadFile(newest_path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = *bytes;
  damaged[damaged.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteFile(newest_path, damaged).ok());
  newest = ReadNewestCheckpoint(dir);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->epoch, 5u);

  ASSERT_TRUE(RemoveCheckpointsBefore(dir, 9).ok());
  EXPECT_FALSE(ReadNewestCheckpoint(dir + "/nope").ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, EmptyDirIsNotFound) {
  std::string dir = FreshDir("ckpt_empty");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  auto r = ReadNewestCheckpoint(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

// ----- Recovery ----------------------------------------------------------

engine::MultiSubjectController MakeController() {
  return engine::MultiSubjectController(
      [] { return std::make_unique<engine::NativeXmlBackend>(); });
}

// Serialized annotation state of one subject: default sign + replica tree
// with sign attributes.
std::string SubjectString(engine::MultiSubjectController* controller,
                          std::string_view name) {
  auto* ac = controller->subject(name);
  EXPECT_NE(ac, nullptr);
  auto* native = dynamic_cast<engine::NativeXmlBackend*>(ac->backend());
  EXPECT_NE(native, nullptr);
  return std::string(1, native->default_sign()) + "\n" +
         xml::Serialize(native->document());
}

struct DurableRun {
  std::string dir;
  xml::Dtd dtd;
  std::vector<std::pair<std::string, std::string>> subjects;
};

// Builds a WAL directory (genesis + one batch per op) while applying the
// ops through `controller` normally; markers are the commit epochs.
void WriteRun(engine::MultiSubjectController* controller,
              const std::vector<engine::BatchOp>& ops, const DurableRun& run) {
  WalOptions wopt;
  wopt.dir = run.dir;
  wopt.level = DurabilityLevel::kNone;
  auto wal = Wal::Open(wopt);
  ASSERT_TRUE(wal.ok()) << wal.status();

  InstallRecord install;
  install.epoch = 1;
  install.rule_cache_epoch = controller->rule_cache().epoch();
  install.dtd_text = xml::DtdToString(run.dtd);
  controller->document().AppendBinary(&install.master_binary);
  for (const auto& [name, policy] : run.subjects) {
    auto* ac = controller->subject(name);
    ASSERT_NE(ac, nullptr);
    SubjectState state;
    state.name = name;
    state.policy_text = policy;
    state.default_sign = ac->CurrentDefaultSign();
    state.marked = ac->ExportMarkedSigns();
    install.subjects.push_back(std::move(state));
  }
  ASSERT_TRUE((*wal)->Append(1, EncodeInstallRecord(install)).ok());

  uint64_t epoch = 1;
  for (const engine::BatchOp& op : ops) {
    std::vector<engine::BatchOp> batch{op};
    engine::CommitCapture capture;
    auto stats = controller->ApplyBatch(batch, &capture);
    ASSERT_TRUE(stats.ok()) << stats.status();
    BatchRecord record;
    record.epoch = ++epoch;
    record.ops = std::move(batch);
    record.master_mutations = std::move(capture.master_mutations);
    record.deltas = std::move(capture.subjects);
    ASSERT_TRUE(
        (*wal)->Append(record.epoch, EncodeBatchRecord(record)).ok());
  }
  ASSERT_TRUE((*wal)->Sync().ok());
}

// A second policy so recovery exercises per-subject sign divergence.
constexpr char kAuditorPolicy[] = R"(
default deny
conflict deny
allow //patient
allow //patient/psn
deny  //patient[.//experimental]
allow //bill
)";

DurableRun HospitalRun(const char* tag) {
  DurableRun run;
  run.dir = FreshDir(tag);
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  run.dtd = *dtd;
  run.subjects = {
      {"auditor", kAuditorPolicy},
      {"nurse", testdata::kHospitalPolicy},
  };
  return run;
}

void SetUpRun(const DurableRun& run,
              engine::MultiSubjectController* controller) {
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(controller->LoadParsed(run.dtd, *doc).ok());
  for (const auto& [name, policy] : run.subjects) {
    ASSERT_TRUE(controller->AddSubject(name, policy).ok());
  }
}

TEST(RecoveryTest, ReplayedStateMatchesLiveState) {
  DurableRun run = HospitalRun("recover_e2e");
  engine::MultiSubjectController live = MakeController();
  SetUpRun(run, &live);
  std::vector<engine::BatchOp> ops{
      engine::BatchOp::Delete("//patient[psn=\"033\"]"),
      engine::BatchOp::Insert("//patients",
                              "<patient><psn>009</psn><name>new</name>"
                              "</patient>"),
      engine::BatchOp::Delete("//patient[psn=\"042\"]/treatment"),
  };
  WriteRun(&live, ops, run);

  engine::MultiSubjectController recovered = MakeController();
  auto state = RecoverState(run.dir, &recovered);
  ASSERT_TRUE(state.ok()) << state.status();
  ASSERT_TRUE(state->found);
  EXPECT_FALSE(state->from_checkpoint);
  EXPECT_EQ(state->epoch, 1 + ops.size());
  EXPECT_EQ(state->replayed_batches, ops.size());
  EXPECT_EQ(state->dtd_text, xml::DtdToString(run.dtd));
  ASSERT_EQ(state->subject_policies.size(), 2u);

  EXPECT_EQ(xml::Serialize(recovered.document()),
            xml::Serialize(live.document()));
  EXPECT_EQ(recovered.document().version(), live.document().version());
  for (const auto& [name, policy] : run.subjects) {
    EXPECT_EQ(SubjectString(&recovered, name), SubjectString(&live, name))
        << name;
  }
  std::filesystem::remove_all(run.dir);
}

TEST(RecoveryTest, ReplayFromCheckpointSkipsCoveredBatches) {
  DurableRun run = HospitalRun("recover_ckpt");
  engine::MultiSubjectController live = MakeController();
  SetUpRun(run, &live);
  std::vector<engine::BatchOp> ops{
      engine::BatchOp::Delete("//patient[psn=\"033\"]"),
      engine::BatchOp::Delete("//patient[psn=\"042\"]"),
  };
  WriteRun(&live, ops, run);

  // Checkpoint the final state (epoch 3): recovery must load it and
  // replay zero batches, ignoring the fully covered WAL.
  CheckpointData data;
  data.epoch = 3;
  data.rule_cache_epoch = live.rule_cache().epoch();
  data.dtd_text = xml::DtdToString(run.dtd);
  live.document().AppendBinary(&data.master_binary);
  data.labels = xpath::ComputeIntervalLabels(live.document());
  for (const auto& [name, policy] : run.subjects) {
    auto* ac = live.subject(name);
    SubjectState subject;
    subject.name = name;
    subject.policy_text = policy;
    subject.default_sign = ac->CurrentDefaultSign();
    subject.marked = ac->ExportMarkedSigns();
    data.subjects.push_back(std::move(subject));
  }
  ASSERT_TRUE(WriteCheckpoint(run.dir, data).ok());

  engine::MultiSubjectController recovered = MakeController();
  auto state = RecoverState(run.dir, &recovered);
  ASSERT_TRUE(state.ok()) << state.status();
  ASSERT_TRUE(state->found);
  EXPECT_TRUE(state->from_checkpoint);
  EXPECT_EQ(state->epoch, 3u);
  EXPECT_EQ(state->replayed_batches, 0u);
  EXPECT_EQ(xml::Serialize(recovered.document()),
            xml::Serialize(live.document()));
  for (const auto& [name, policy] : run.subjects) {
    EXPECT_EQ(SubjectString(&recovered, name), SubjectString(&live, name));
  }
  std::filesystem::remove_all(run.dir);
}

TEST(RecoveryTest, EpochGapIsAnError) {
  DurableRun run = HospitalRun("recover_gap");
  engine::MultiSubjectController live = MakeController();
  SetUpRun(run, &live);
  std::vector<engine::BatchOp> ops{
      engine::BatchOp::Delete("//patient[psn=\"033\"]"),
  };
  WriteRun(&live, ops, run);
  // Append a batch whose epoch skips 3: recovery must refuse rather than
  // replay out of order.
  {
    WalOptions wopt;
    wopt.dir = run.dir;
    wopt.level = DurabilityLevel::kNone;
    auto wal = Wal::Open(wopt);
    ASSERT_TRUE(wal.ok());
    BatchRecord record;
    record.epoch = 4;
    record.ops.push_back(engine::BatchOp::Delete("//patient[psn=\"042\"]"));
    ASSERT_TRUE(
        (*wal)->Append(record.epoch, EncodeBatchRecord(record)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  engine::MultiSubjectController recovered = MakeController();
  auto state = RecoverState(run.dir, &recovered);
  ASSERT_FALSE(state.ok());
  EXPECT_EQ(state.status().code(), StatusCode::kInternal);
  std::filesystem::remove_all(run.dir);
}

TEST(RecoveryTest, EmptyDirectoryRecoversNothing) {
  std::string dir = FreshDir("recover_empty");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  engine::MultiSubjectController controller = MakeController();
  auto state = RecoverState(dir, &controller);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_FALSE(state->found);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryTest, InspectSummarizesDirectory) {
  DurableRun run = HospitalRun("recover_inspect");
  engine::MultiSubjectController live = MakeController();
  SetUpRun(run, &live);
  std::vector<engine::BatchOp> ops{
      engine::BatchOp::Delete("//patient[psn=\"033\"]"),
      engine::BatchOp::Delete("//patient[psn=\"042\"]"),
  };
  WriteRun(&live, ops, run);
  auto summary = InspectWalDir(run.dir);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_FALSE(summary->has_checkpoint);
  EXPECT_EQ(summary->segments, 1u);
  EXPECT_EQ(summary->install_records, 1u);
  EXPECT_EQ(summary->batch_records, 2u);
  EXPECT_EQ(summary->first_batch_epoch, 2u);
  EXPECT_EQ(summary->last_batch_epoch, 3u);
  EXPECT_EQ(summary->subjects.size(), 2u);
  std::filesystem::remove_all(run.dir);
}

// ----- Crash-point fuzz harness ------------------------------------------

// Fixed crash points cover the interesting boundaries deterministically;
// the remaining seeds draw crash point, torn-tail length, segment size,
// and checkpoint cadence at random (testing/serve_fuzz.h).
TEST(RecoveryFuzzTest, CrashBeforeGenesisRecoversNothing) {
  xmlac::testing::RecoveryFuzzOptions opt;
  opt.seed = 7;
  opt.crash_point = 0;
  auto result = xmlac::testing::RunRecoveryFuzz(opt);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_FALSE(result.recovered);
}

TEST(RecoveryFuzzTest, CrashRightAfterGenesis) {
  xmlac::testing::RecoveryFuzzOptions opt;
  opt.seed = 7;
  opt.crash_point = 1;
  auto result = xmlac::testing::RunRecoveryFuzz(opt);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_TRUE(result.recovered);
  EXPECT_EQ(result.durable_batches, 0u);
}

TEST(RecoveryFuzzTest, RandomizedCrashPoints) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    xmlac::testing::RecoveryFuzzOptions opt;
    opt.seed = seed;
    auto result = xmlac::testing::RunRecoveryFuzz(opt);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.failure;
  }
}

}  // namespace
}  // namespace xmlac::storage
