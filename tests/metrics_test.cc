#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/export.h"

namespace xmlac::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketSemantics) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  h->Record(0);    // bucket 0
  h->Record(1);    // bucket 1: [1, 2)
  h->Record(2);    // bucket 2: [2, 4)
  h->Record(3);    // bucket 2
  h->Record(100);  // bucket 7: [64, 128)
  HistogramData d = reg.Snapshot().histograms.at("h");
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.sum, 106u);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 100u);
  EXPECT_EQ(d.buckets[0], 1u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 2u);
  EXPECT_EQ(d.buckets[7], 1u);
  EXPECT_DOUBLE_EQ(d.Mean(), 106.0 / 5.0);
}

TEST(HistogramTest, PercentileClampedToObservedRange) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  for (int i = 0; i < 100; ++i) h->Record(10);
  HistogramData d = reg.Snapshot().histograms.at("h");
  // All observations are 10: any percentile must land on 10 exactly
  // (geometric bucket midpoints are clamped to [min, max]).
  EXPECT_DOUBLE_EQ(d.Percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(d.Percentile(0.99), 10.0);
}

TEST(HistogramTest, PercentileOrdersAcrossBuckets) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  for (int i = 0; i < 90; ++i) h->Record(2);
  for (int i = 0; i < 10; ++i) h->Record(1000);
  HistogramData d = reg.Snapshot().histograms.at("h");
  EXPECT_LT(d.Percentile(0.5), d.Percentile(0.99));
  EXPECT_LE(d.Percentile(0.99), 1000.0);
}

TEST(HistogramTest, PercentileExactForSingleValueBuckets) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  // Bucket 1 is [1, 1]: a bucket holding one distinct value is exact.
  for (int i = 0; i < 50; ++i) h->Record(1);
  HistogramData d = reg.Snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(d.Percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.Percentile(0.99), 1.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  // All in bucket 3: [4, 7].  A midpoint-only estimator would return the
  // same value for every percentile; interpolation must spread them.
  h->Record(4);
  h->Record(5);
  h->Record(6);
  h->Record(7);
  HistogramData d = reg.Snapshot().histograms.at("h");
  double p25 = d.Percentile(0.25);
  double p50 = d.Percentile(0.5);
  double p99 = d.Percentile(0.99);
  EXPECT_LT(p25, p50);
  EXPECT_LT(p50, p99);
  EXPECT_GE(p25, 4.0);
  EXPECT_LE(p99, 7.0);
  // p50 should land near the geometric middle of [4, 7], not at an edge.
  EXPECT_GT(p50, 4.5);
  EXPECT_LT(p50, 6.5);
}

TEST(HistogramTest, PercentilePinsTailAcrossBuckets) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  for (int i = 0; i < 99; ++i) h->Record(10);
  h->Record(100000);
  HistogramData d = reg.Snapshot().histograms.at("h");
  // p50 and p99 both rank inside the dense [8,16) bucket: the estimate must
  // stay within that bucket's observed range [10, 15] and never be pulled
  // toward the outlier.  p100 must reach the outlier's bucket.
  EXPECT_GE(d.Percentile(0.5), 10.0);
  EXPECT_LE(d.Percentile(0.5), 15.0);
  EXPECT_GE(d.Percentile(0.99), 10.0);
  EXPECT_LE(d.Percentile(0.99), 15.0);
  EXPECT_GT(d.Percentile(1.0), 10000.0);
  EXPECT_LE(d.Percentile(1.0), 100000.0);
}

TEST(HistogramTest, PercentileMonotoneInP) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<uint64_t>(i));
  HistogramData d = reg.Snapshot().histograms.at("h");
  double prev = 0.0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    double v = d.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
    prev = v;
  }
  // Sanity: the estimates track the true quantiles of 1..1000 loosely
  // (log-bucket resolution, so allow a factor-of-two band).
  EXPECT_GT(d.Percentile(0.5), 250.0);
  EXPECT_LT(d.Percentile(0.5), 1000.0);
}

TEST(CounterHandleTest, ResolvesLazilyAndRebinds) {
  MetricsRegistry first;
  CounterHandle handle("handle.test");
  {
    ScopedMetrics ctx(&first);
    handle.Increment(3);
    handle.Increment();
  }
  EXPECT_EQ(first.Snapshot().counters.at("handle.test"), 4u);
  // A different registry must not receive increments through a stale pointer.
  MetricsRegistry second;
  {
    ScopedMetrics ctx(&second);
    handle.Increment(10);
  }
  EXPECT_EQ(first.Snapshot().counters.at("handle.test"), 4u);
  EXPECT_EQ(second.Snapshot().counters.at("handle.test"), 10u);
}

TEST(CounterHandleTest, NoRegistryIsANoOp) {
  ASSERT_EQ(CurrentMetrics(), nullptr);
  CounterHandle handle("handle.noop");
  handle.Increment(5);  // must not crash
  HistogramHandle hist("handle.noop_hist");
  hist.Record(5);  // must not crash
}

TEST(HistogramHandleTest, ResolvesAndRebinds) {
  MetricsRegistry first;
  HistogramHandle handle("handle.hist");
  {
    ScopedMetrics ctx(&first);
    handle.Record(8);
    handle.Record(16);
  }
  EXPECT_EQ(first.Snapshot().histograms.at("handle.hist").count, 2u);
  MetricsRegistry second;
  {
    ScopedMetrics ctx(&second);
    handle.Record(32);
  }
  EXPECT_EQ(first.Snapshot().histograms.at("handle.hist").count, 2u);
  EXPECT_EQ(second.Snapshot().histograms.at("handle.hist").count, 1u);
}

TEST(RegistryTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* a = reg.counter("a");
  // Force more insertions; the original handle must stay valid and identical.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i))->Increment();
  }
  EXPECT_EQ(reg.counter("a"), a);
  a->Increment(7);
  EXPECT_EQ(reg.Snapshot().counters.at("a"), 7u);
}

TEST(RegistryTest, SnapshotIsolation) {
  MetricsRegistry reg;
  reg.counter("x")->Increment(5);
  MetricsSnapshot before = reg.Snapshot();
  reg.counter("x")->Increment(5);
  reg.gauge("g")->Set(1);
  MetricsSnapshot after = reg.Snapshot();
  // Later increments never mutate an existing snapshot.
  EXPECT_EQ(before.counters.at("x"), 5u);
  EXPECT_EQ(before.gauges.count("g"), 0u);
  EXPECT_EQ(after.counters.at("x"), 10u);
  EXPECT_EQ(after.gauges.at("g"), 1);
}

TEST(RegistryTest, ResetKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.counter("x");
  c->Increment(3);
  reg.histogram("h")->Record(9);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);  // cached handle still valid
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("x"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(RegistryTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.counter("shared");
      Histogram* h = reg.histogram("hist");
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("hist").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CurrentMetricsTest, ScopedInstallAndNesting) {
  EXPECT_EQ(CurrentMetrics(), nullptr);
  MetricsRegistry outer_reg;
  MetricsRegistry inner_reg;
  {
    ScopedMetrics outer(&outer_reg);
    EXPECT_EQ(CurrentMetrics(), &outer_reg);
    IncrementCounter("n", 1);
    {
      ScopedMetrics inner(&inner_reg);
      EXPECT_EQ(CurrentMetrics(), &inner_reg);
      IncrementCounter("n", 10);
    }
    EXPECT_EQ(CurrentMetrics(), &outer_reg);
    IncrementCounter("n", 2);
  }
  EXPECT_EQ(CurrentMetrics(), nullptr);
  EXPECT_EQ(outer_reg.Snapshot().counters.at("n"), 3u);
  EXPECT_EQ(inner_reg.Snapshot().counters.at("n"), 10u);
}

TEST(CurrentMetricsTest, HelpersAreNoOpsWithoutRegistry) {
  ASSERT_EQ(CurrentMetrics(), nullptr);
  // Must not crash or create anything anywhere.
  IncrementCounter("nobody", 5);
  SetGauge("nobody", 5);
  RecordHistogram("nobody", 5);
  ScopedTimer t("nobody");
}

TEST(ScopedTimerTest, RecordsIntoCurrentRegistry) {
  MetricsRegistry reg;
  {
    ScopedMetrics ctx(&reg);
    ScopedTimer t("op_us");
  }
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.histograms.at("op_us").count, 1u);
}

TEST(ExportTest, TextTableListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("pipeline.events")->Increment(3);
  reg.gauge("pipeline.depth")->Set(-2);
  reg.histogram("pipeline.lat_us")->Record(128);
  std::string text = MetricsToText(reg.Snapshot());
  EXPECT_NE(text.find("pipeline.events"), std::string::npos);
  EXPECT_NE(text.find("pipeline.depth"), std::string::npos);
  EXPECT_NE(text.find("pipeline.lat_us"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("-2"), std::string::npos);
}

TEST(ExportTest, JsonShape) {
  MetricsRegistry reg;
  reg.counter("c\"quoted")->Increment();
  reg.histogram("h")->Record(7);
  std::string json = MetricsToJson(reg.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Names must arrive escaped.
  EXPECT_NE(json.find("c\\\"quoted"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ExportTest, JsonEscapeControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

}  // namespace
}  // namespace xmlac::obs
