#include "common/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "common/timer.h"

namespace xmlac {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/xmlac_io_test_" + name;
}

TEST(IoTest, WriteThenReadRoundTrip) {
  std::string path = TempPath("roundtrip");
  std::string payload = "hello\n<xml attr=\"v\"/>\0binary";
  payload.push_back('\0');
  payload += "tail";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(IoTest, OverwriteReplaces) {
  std::string path = TempPath("overwrite");
  ASSERT_TRUE(WriteFile(path, "long original content").ok());
  ASSERT_TRUE(WriteFile(path, "short").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");
  std::remove(path.c_str());
}

TEST(IoTest, EmptyFile) {
  std::string path = TempPath("empty");
  ASSERT_TRUE(WriteFile(path, "").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  auto r = ReadFile("/nonexistent/dir/file.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteFile("/nonexistent/dir/file.txt", "x").ok());
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RandomTest, UniformBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, WordShapeAndDistribution) {
  Random rng(11);
  std::string w = rng.Word(8);
  EXPECT_EQ(w.size(), 8u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  // OneIn(2) is roughly fair.
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.OneIn(2) ? 1 : 0;
  EXPECT_GT(heads, 800);
  EXPECT_LT(heads, 1200);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  // Burn a little CPU deterministically.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  double s = t.ElapsedSeconds();
  EXPECT_GT(s, 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0);
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), s + 1.0);
}

}  // namespace
}  // namespace xmlac
