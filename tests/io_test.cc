#include "common/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "common/timer.h"

namespace xmlac {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/xmlac_io_test_" + name;
}

TEST(IoTest, WriteThenReadRoundTrip) {
  std::string path = TempPath("roundtrip");
  std::string payload = "hello\n<xml attr=\"v\"/>\0binary";
  payload.push_back('\0');
  payload += "tail";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

TEST(IoTest, OverwriteReplaces) {
  std::string path = TempPath("overwrite");
  ASSERT_TRUE(WriteFile(path, "long original content").ok());
  ASSERT_TRUE(WriteFile(path, "short").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");
  std::remove(path.c_str());
}

TEST(IoTest, EmptyFile) {
  std::string path = TempPath("empty");
  ASSERT_TRUE(WriteFile(path, "").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  auto r = ReadFile("/nonexistent/dir/file.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteFile("/nonexistent/dir/file.txt", "x").ok());
}

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) known-answer
// vectors — the standard check values every implementation must hit.
TEST(Crc32Test, KnownAnswerVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // the canonical CRC-32 check
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32(zeros), 0x190A55ADu);
}

TEST(Crc32Test, SeedChainsPartialComputations) {
  // The documented chaining contract: Crc32(a + b) == Crc32(b, Crc32(a)),
  // which is what lets the WAL checksum a frame body in pieces.
  Random rng(99);
  for (int i = 0; i < 50; ++i) {
    std::string a, b;
    size_t la = rng.Uniform(64), lb = rng.Uniform(64);
    for (size_t j = 0; j < la; ++j)
      a.push_back(static_cast<char>(rng.Uniform(256)));
    for (size_t j = 0; j < lb; ++j)
      b.push_back(static_cast<char>(rng.Uniform(256)));
    EXPECT_EQ(Crc32(a + b), Crc32(b, Crc32(a)));
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "write-ahead log frame body";
  uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(flipped), clean)
          << "bit " << bit << " of byte " << byte;
    }
  }
}

TEST(IoTest, AtomicWriteFileRoundTrip) {
  std::string path = TempPath("atomic");
  std::string payload = "checkpoint\0body";
  payload.push_back('\0');
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  std::remove(path.c_str());
}

// Visible-or-absent: after AtomicWriteFile over an existing file, a reader
// sees either the complete old or the complete new contents — never a
// mix, and never a truncated file.  (Single-threaded approximation: the
// replace either fully happened or the old file is intact; the temp file
// never lingers under the target name.)
TEST(IoTest, AtomicWriteFileReplacesWholesale) {
  std::string path = TempPath("atomic_replace");
  ASSERT_TRUE(AtomicWriteFile(path, "old contents, rather long").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "new").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new");
  std::remove(path.c_str());
}

TEST(IoTest, AtomicWriteFileFailureLeavesTargetIntact) {
  std::string dir = TempPath("atomic_dir");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  std::string path = dir + "/target";
  ASSERT_TRUE(AtomicWriteFile(path, "original").ok());
  // Writing into a nonexistent directory must fail without touching
  // anything (the temp file lives next to its target).
  EXPECT_FALSE(AtomicWriteFile(dir + "/missing/target", "x").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "original");
  // No temp droppings left behind under the directory.
  auto files = ListFiles(dir);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 1u);
  std::remove(path.c_str());
}

TEST(IoTest, EnsureDirectoryAndListFiles) {
  std::string dir = TempPath("listdir");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  // Idempotent on an existing directory.
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(WriteFile(dir + "/b.log", "b").ok());
  ASSERT_TRUE(WriteFile(dir + "/a.log", "a").ok());
  auto files = ListFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  std::remove((dir + "/a.log").c_str());
  std::remove((dir + "/b.log").c_str());
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RandomTest, UniformBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, WordShapeAndDistribution) {
  Random rng(11);
  std::string w = rng.Word(8);
  EXPECT_EQ(w.size(), 8u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
  // OneIn(2) is roughly fair.
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.OneIn(2) ? 1 : 0;
  EXPECT_GT(heads, 800);
  EXPECT_LT(heads, 1200);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  // Burn a little CPU deterministically.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  double s = t.ElapsedSeconds();
  EXPECT_GT(s, 0.0);
  EXPECT_GE(t.ElapsedMicros(), 0);
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), s + 1.0);
}

}  // namespace
}  // namespace xmlac
