// Unit and stress coverage for common/epoch.h: pin/advance/retire
// ordering, nested pins, multi-threaded reclamation (nothing reclaimed
// while a reader pins an older epoch, everything reclaimed after the last
// unpin), and a use-after-retire regression that ASan watches — a pinned
// reader must be able to dereference a version retired behind its back.

#include "common/epoch.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace xmlac {
namespace {

// Each test uses its own manager: Global() is process-wide and other
// subsystems (the structural index) retire into it.
TEST(EpochManagerTest, PinReturnsCurrentEpochAndUnpins) {
  EpochManager mgr;
  EXPECT_FALSE(mgr.pinned());
  uint64_t e = mgr.Pin();
  EXPECT_EQ(e, mgr.epoch());
  EXPECT_TRUE(mgr.pinned());
  mgr.Unpin();
  EXPECT_FALSE(mgr.pinned());
}

TEST(EpochManagerTest, NestedPinKeepsOuterEpoch) {
  EpochManager mgr;
  uint64_t outer = mgr.Pin();
  mgr.Advance();
  // The inner pin must NOT move this thread's announced epoch forward:
  // objects retired between the two pins could otherwise be reclaimed
  // while the outer scope still traverses them.
  uint64_t inner = mgr.Pin();
  EXPECT_EQ(inner, outer);
  mgr.Unpin();
  EXPECT_TRUE(mgr.pinned());  // outer pin still held
  mgr.Unpin();
  EXPECT_FALSE(mgr.pinned());
}

TEST(EpochManagerTest, AdvanceIsMonotonic) {
  EpochManager mgr;
  uint64_t e0 = mgr.epoch();
  uint64_t e1 = mgr.Advance();
  uint64_t e2 = mgr.Advance();
  EXPECT_EQ(e1, e0 + 1);
  EXPECT_EQ(e2, e1 + 1);
  EXPECT_EQ(mgr.stats().advances, 2u);
}

TEST(EpochManagerTest, RetireWithoutPinsReclaimsImmediately) {
  EpochManager mgr;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> watch = obj;
  mgr.Advance();
  mgr.Retire(std::move(obj));
  EXPECT_FALSE(watch.expired());  // deferred, not freed inline
  EXPECT_EQ(mgr.Collect(), 1u);
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(mgr.stats().retired, 1u);
  EXPECT_EQ(mgr.stats().reclaimed, 1u);
  EXPECT_EQ(mgr.stats().live, 0u);
}

TEST(EpochManagerTest, PinBlocksReclamationUntilUnpin) {
  EpochManager mgr;
  // Reader pins at the pre-advance epoch on another thread and holds the
  // pin across the writer's publish/advance/retire — the exact window the
  // scheme exists for.
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard guard(mgr);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> watch = obj;
  mgr.Advance();  // writer: publish happened-before this in real use
  mgr.Retire(std::move(obj));
  EXPECT_EQ(mgr.Collect(), 0u);  // reader's pin predates the stamp
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(mgr.stats().live, 1u);

  release.store(true);
  reader.join();
  EXPECT_EQ(mgr.Collect(), 1u);  // eventual reclaim after unpin
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(mgr.stats().live, 0u);
}

TEST(EpochManagerTest, ReaderPinnedAfterAdvanceDoesNotBlockReclaim) {
  EpochManager mgr;
  auto obj = std::make_shared<int>(9);
  std::weak_ptr<int> watch = obj;
  mgr.Advance();
  mgr.Retire(std::move(obj));
  // This pin reads the post-advance epoch, so it cannot be holding the
  // retiree (it would have loaded the replacement pointer).
  EpochGuard guard(mgr);
  EXPECT_EQ(mgr.Collect(), 1u);
  EXPECT_TRUE(watch.expired());
}

// ASan-verified use-after-retire regression: a reader pins, "loads the
// published pointer", the writer retires that object and runs GC passes —
// the reader's pointer must stay dereferenceable until it unpins, and the
// object must be freed by the first Collect() afterwards.
TEST(EpochManagerTest, RetiredObjectOutlivesPinnedReader) {
  EpochManager mgr;
  auto version = std::make_shared<std::vector<int>>(1024, 5);
  std::weak_ptr<std::vector<int>> watch = version;
  const std::vector<int>* raw = version.get();

  std::atomic<bool> pinned{false};
  std::atomic<bool> retired{false};
  std::atomic<long> sum{0};
  std::thread reader([&] {
    EpochGuard guard(mgr);
    pinned.store(true);
    while (!retired.load()) std::this_thread::yield();
    // The writer has retired and Collect()ed; under ASan this scan faults
    // if reclamation ignored the pin.
    long s = 0;
    for (int v : *raw) s += v;
    sum.store(s);
  });
  while (!pinned.load()) std::this_thread::yield();

  mgr.Advance();
  mgr.Retire(std::move(version));
  EXPECT_EQ(mgr.Collect(), 0u);
  retired.store(true);
  reader.join();
  EXPECT_EQ(sum.load(), 1024 * 5);
  EXPECT_EQ(mgr.Collect(), 1u);
  EXPECT_TRUE(watch.expired());
}

// Multi-threaded reclamation stress: readers continuously pin/scan/unpin
// while a writer publishes new versions, retiring the old.  Invariants:
// no reader ever observes a freed version (ASan/TSan), and at quiesce
// every retired version has been reclaimed.
TEST(EpochManagerTest, ConcurrentReclamationStress) {
  EpochManager mgr;
  constexpr int kReaders = 4;
  constexpr int kVersions = 400;

  struct Version {
    std::vector<int> payload;
    explicit Version(int fill) : payload(256, fill) {}
  };
  std::atomic<const Version*> current{nullptr};
  auto first = std::make_shared<Version>(0);
  std::shared_ptr<Version> head = first;
  current.store(head.get());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(mgr);
        const Version* v = current.load(std::memory_order_seq_cst);
        long sum = 0;
        for (int x : v->payload) sum += x;
        // Every element was written with the same fill value, so a torn
        // or freed payload shows up as an inconsistent sum.
        ASSERT_EQ(sum % 256, 0);
      }
    });
  }

  for (int i = 1; i <= kVersions; ++i) {
    auto next = std::make_shared<Version>(i);
    std::shared_ptr<Version> old = std::move(head);
    head = std::move(next);
    current.store(head.get(), std::memory_order_seq_cst);
    mgr.Advance();
    mgr.Retire(std::move(old));
    mgr.Collect();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Quiesced: no pins remain, so one pass drains the whole retire list.
  mgr.Collect();
  EpochManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.retired, static_cast<uint64_t>(kVersions));
  EXPECT_EQ(stats.reclaimed, stats.retired);
  EXPECT_EQ(stats.live, 0u);
}

TEST(EpochManagerTest, StatsCountPins) {
  EpochManager mgr;
  {
    EpochGuard a(mgr);
    EpochGuard b(mgr);  // nested: not a new pin
  }
  {
    EpochGuard c(mgr);
  }
  EXPECT_EQ(mgr.stats().pins, 2u);
}

TEST(EpochManagerTest, SlotsOfExitedThreadsArePruned) {
  EpochManager mgr;
  std::thread t([&] {
    EpochGuard guard(mgr);
  });
  t.join();
  // The exited thread's slot is unpinned and solely owned by the manager;
  // a Collect() pass must drop it rather than counting it as a reader
  // forever.
  auto obj = std::make_shared<int>(1);
  mgr.Advance();
  mgr.Retire(std::move(obj));
  EXPECT_EQ(mgr.Collect(), 1u);
}

TEST(EpochManagerTest, TwoManagersKeepIndependentSlots) {
  EpochManager a;
  EpochManager b;
  a.Pin();
  EXPECT_TRUE(a.pinned());
  EXPECT_FALSE(b.pinned());
  b.Pin();
  a.Unpin();
  EXPECT_FALSE(a.pinned());
  EXPECT_TRUE(b.pinned());
  b.Unpin();
}

}  // namespace
}  // namespace xmlac
