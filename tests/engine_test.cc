#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/access_controller.h"
#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "policy/semantics.h"
#include "tests/testdata.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

enum class BackendKind { kNative, kRow, kColumn };

std::unique_ptr<Backend> MakeBackend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kNative:
      return std::make_unique<NativeXmlBackend>();
    case BackendKind::kRow: {
      RelationalOptions opt;
      opt.storage = reldb::StorageKind::kRowStore;
      return std::make_unique<RelationalBackend>(opt);
    }
    case BackendKind::kColumn: {
      RelationalOptions opt;
      opt.storage = reldb::StorageKind::kColumnStore;
      return std::make_unique<RelationalBackend>(opt);
    }
  }
  return nullptr;
}

const char* KindName(BackendKind k) {
  switch (k) {
    case BackendKind::kNative:
      return "Native";
    case BackendKind::kRow:
      return "Row";
    case BackendKind::kColumn:
      return "Column";
  }
  return "?";
}

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    dtd_ = std::make_unique<xml::Dtd>(std::move(*dtd));
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(*doc);
    backend_ = MakeBackend(GetParam());
    ASSERT_TRUE(backend_->Load(*dtd_, doc_).ok());
  }

  std::unique_ptr<xml::Dtd> dtd_;
  xml::Document doc_;
  std::unique_ptr<Backend> backend_;
};

TEST_P(BackendTest, NodeCountMatchesDocument) {
  EXPECT_EQ(backend_->NodeCount(), doc_.AllElements().size());
}

TEST_P(BackendTest, EvaluateQueryMatchesTreeEvaluator) {
  for (const char* expr :
       {"//patient", "//patient[treatment]", "//patient[.//experimental]",
        "/hospital/dept/patients", "//regular[bill > 500]", "//name",
        "//patient/*", "//nosuchlabel"}) {
    auto path = xpath::ParsePath(expr);
    ASSERT_TRUE(path.ok());
    auto got = backend_->EvaluateQuery(*path);
    ASSERT_TRUE(got.ok()) << got.status() << " for " << expr;
    std::vector<UniversalId> expected;
    for (xml::NodeId n : xpath::Evaluate(*path, doc_)) {
      expected.push_back(static_cast<UniversalId>(n));
    }
    EXPECT_EQ(*got, expected) << expr;
  }
}

TEST_P(BackendTest, SignLifecycle) {
  ASSERT_TRUE(backend_->ResetAllSigns('-').ok());
  auto path = xpath::ParsePath("//patient");
  ASSERT_TRUE(path.ok());
  auto ids = backend_->EvaluateQuery(*path);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 3u);
  for (UniversalId id : *ids) {
    auto s = backend_->GetSign(id);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, '-');
  }
  ASSERT_TRUE(backend_->SetSigns(*ids, '+').ok());
  for (UniversalId id : *ids) {
    EXPECT_EQ(*backend_->GetSign(id), '+');
  }
  // Reset flips everything back.
  ASSERT_TRUE(backend_->ResetAllSigns('-').ok());
  EXPECT_EQ(*backend_->GetSign((*ids)[0]), '-');
}

TEST_P(BackendTest, GetSignUnknownIdFails) {
  EXPECT_EQ(backend_->GetSign(999999).status().code(), StatusCode::kNotFound);
}

TEST_P(BackendTest, DeleteWhereRemovesSubtrees) {
  auto u = xpath::ParsePath("//patient/treatment");
  ASSERT_TRUE(u.ok());
  auto deleted = backend_->DeleteWhere(*u);
  ASSERT_TRUE(deleted.ok()) << deleted.status();
  // 2 treatments + regular + experimental + med + 2 bill + test = 8 elements.
  EXPECT_EQ(*deleted, 8u);
  auto remaining = backend_->EvaluateQuery(*xpath::ParsePath("//bill"));
  ASSERT_TRUE(remaining.ok());
  EXPECT_TRUE(remaining->empty());
  EXPECT_EQ(backend_->NodeCount(), doc_.AllElements().size() - 8);
}

// Full annotation must agree with the Table 2 ground truth on every node.
TEST_P(BackendTest, AnnotateFullMatchesGroundTruth) {
  for (auto ds : {policy::DefaultSemantics::kAllow,
                  policy::DefaultSemantics::kDeny}) {
    for (auto cr : {policy::ConflictResolution::kAllowOverrides,
                    policy::ConflictResolution::kDenyOverrides}) {
      auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
      ASSERT_TRUE(p.ok());
      p->set_default_semantics(ds);
      p->set_conflict_resolution(cr);
      auto stats = AnnotateFull(backend_.get(), *p);
      ASSERT_TRUE(stats.ok()) << stats.status();
      policy::NodeSet truth = policy::AccessibleNodes(*p, doc_);
      for (xml::NodeId n : doc_.AllElements()) {
        auto sign = backend_->GetSign(static_cast<UniversalId>(n));
        ASSERT_TRUE(sign.ok());
        EXPECT_EQ(*sign == '+', truth.count(n) > 0)
            << "node " << n << " (" << doc_.node(n).label << ") ds/cr "
            << static_cast<int>(ds) << "/" << static_cast<int>(cr);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kRow,
                                           BackendKind::kColumn),
                         [](const auto& info) { return KindName(info.param); });

// ---------------------------------------------------------------------------

class ControllerTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    ac_ = std::make_unique<AccessController>(MakeBackend(GetParam()));
    ASSERT_TRUE(ac_->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
    ASSERT_TRUE(ac_->SetPolicy(testdata::kHospitalPolicy).ok());
  }

  // From-scratch annotation oracle: a parallel document with the same
  // updates applied, annotated fully.
  std::unique_ptr<AccessController> ac_;
};

TEST_P(ControllerTest, PolicyGetsOptimized) {
  // Table 1 -> Table 3: 8 rules down to 5.
  EXPECT_EQ(ac_->active_policy().size(), 5u);
  EXPECT_EQ(ac_->optimizer_stats().removed, 3u);
}

TEST_P(ControllerTest, AllOrNothingQueries) {
  // All patient names are accessible.
  auto r = ac_->Query("//patient/name");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->granted);
  EXPECT_EQ(r->ids.size(), 3u);
  // //patient mixes accessible and inaccessible -> denied.
  r = ac_->Query("//patient");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAccessDenied);
  // Staff data: nothing accessible -> denied.
  r = ac_->Query("//doctor");
  ASSERT_FALSE(r.ok());
  // Accessible singleton.
  r = ac_->Query("//regular");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->granted);
  // Empty result: granted (leaks nothing).
  r = ac_->Query("//nosuchlabel");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->granted);
  EXPECT_TRUE(r->ids.empty());
}

// The paper's motivating update: delete the treatments of all patients;
// afterwards every patient must be accessible (R3/R5 no longer apply).
TEST_P(ControllerTest, UpdateReannotatesPatients) {
  auto before = ac_->Query("//patient");
  ASSERT_FALSE(before.ok());  // denied pre-update
  auto stats = ac_->Update("//patient/treatment");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->nodes_deleted, 8u);
  EXPECT_GT(stats->rules_triggered, 0u);
  auto after = ac_->Query("//patient");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->granted);
  EXPECT_EQ(after->ids.size(), 3u);
}

// The observability layer must agree with itself and with the pipeline's
// own statistics across a SetPolicy + Query + Update sequence.
TEST_P(ControllerTest, MetricsPipelineConsistency) {
  // SetUp already ran Load + SetPolicy with the controller's registry
  // installed, so optimizer/annotator/cache series must exist.
  obs::MetricsSnapshot setup = ac_->SnapshotMetrics();
  ASSERT_TRUE(setup.counters.count("optimizer.rules_examined"));
  ASSERT_TRUE(setup.counters.count("annotator.full_annotations"));
  EXPECT_EQ(setup.counters.at("annotator.full_annotations"), 1u);
  // The optimizer warms the shared containment cache: every check is
  // either a hit or a miss, nothing is dropped.
  ASSERT_TRUE(setup.counters.count("containment.cache.checks"));
  EXPECT_EQ(setup.counters.at("containment.cache.checks"),
            setup.counters.at("containment.cache.hits") +
                setup.counters.at("containment.cache.misses"));
  EXPECT_GT(setup.counters.at("containment.cache.checks"), 0u);

  auto q = ac_->Query("//patient/name");
  ASSERT_TRUE(q.ok());
  obs::MetricsSnapshot queried = ac_->SnapshotMetrics();
  EXPECT_EQ(queried.counters.at("engine.queries"), 1u);
  EXPECT_EQ(queried.counters.at("requester.requests"), 1u);
  EXPECT_EQ(queried.counters.at("requester.nodes_selected"), q->ids.size());

  auto up = ac_->Update("//patient/treatment");
  ASSERT_TRUE(up.ok()) << up.status();
  obs::MetricsSnapshot updated = ac_->SnapshotMetrics();
  EXPECT_EQ(updated.counters.at("engine.updates"), 1u);
  EXPECT_EQ(updated.counters.at("trigger.invocations"), 1u);
  // The trigger never fires more rules than the active policy holds, and
  // fired + skipped partition the policy.
  EXPECT_LE(up->rules_triggered, ac_->active_policy().size());
  EXPECT_EQ(updated.counters.at("trigger.rules_fired"), up->rules_triggered);
  EXPECT_EQ(updated.counters.at("trigger.rules_fired") +
                updated.counters.at("trigger.rules_skipped"),
            ac_->active_policy().size());
  EXPECT_EQ(updated.counters.at("annotator.reannotations"), 1u);
  // Cache stays consistent after the trigger's probes too.
  EXPECT_EQ(updated.counters.at("containment.cache.checks"),
            updated.counters.at("containment.cache.hits") +
                updated.counters.at("containment.cache.misses"));
  // Monotone: the update can only add cache checks.
  EXPECT_GE(updated.counters.at("containment.cache.checks"),
            setup.counters.at("containment.cache.checks"));
}

// With tracing enabled, the span tree mirrors the operations performed.
TEST_P(ControllerTest, TraceTreeCoversOperations) {
  ac_->EnableTracing(true);
  ASSERT_TRUE(ac_->Query("//regular").ok());
  ASSERT_TRUE(ac_->Update("//experimental").ok());
  const obs::TraceSpan& root = ac_->tracer().root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "query");
  EXPECT_EQ(root.children[1]->name, "update");
  EXPECT_GE(root.children[0]->duration_us, 0);
  EXPECT_GE(root.children[1]->duration_us, 0);
  // The update span contains the trigger, delete and reannotate phases.
  std::vector<std::string> phases;
  for (const auto& child : root.children[1]->children) {
    phases.push_back(child->name);
  }
  EXPECT_NE(std::find(phases.begin(), phases.end(), "trigger"), phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "delete"), phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "reannotate"),
            phases.end());
}

// Key invariant: partial re-annotation after an update equals from-scratch
// annotation of the post-update document, for a battery of updates.
TEST_P(ControllerTest, ReannotationMatchesFullAnnotation) {
  for (const char* update :
       {"//patient/treatment", "//treatment", "//experimental",
        "//patient[psn=\"033\"]", "//regular", "//patient/name",
        "//staffinfo"}) {
    // Fresh controller with partial re-annotation.
    auto partial = std::make_unique<AccessController>(MakeBackend(GetParam()));
    ASSERT_TRUE(
        partial->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
    ASSERT_TRUE(partial->SetPolicy(testdata::kHospitalPolicy).ok());
    auto st = partial->Update(update);
    ASSERT_TRUE(st.ok()) << st.status() << " for " << update;

    // Oracle: same update, then full re-annotation.
    auto oracle = std::make_unique<AccessController>(MakeBackend(GetParam()));
    ASSERT_TRUE(
        oracle->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
    ASSERT_TRUE(oracle->SetPolicy(testdata::kHospitalPolicy).ok());
    auto u = xpath::ParsePath(update);
    ASSERT_TRUE(u.ok());
    ASSERT_TRUE(oracle->backend()->DeleteWhere(*u).ok());
    ASSERT_TRUE(oracle->ReannotateFull().ok());

    // Compare the sign of every surviving node.
    auto all = xpath::ParsePath("//*");
    ASSERT_TRUE(all.ok());
    auto ids = partial->backend()->EvaluateQuery(*all);
    ASSERT_TRUE(ids.ok());
    auto oracle_ids = oracle->backend()->EvaluateQuery(*all);
    ASSERT_TRUE(oracle_ids.ok());
    ASSERT_EQ(*ids, *oracle_ids) << update;
    for (UniversalId id : *ids) {
      auto a = partial->backend()->GetSign(id);
      auto b = oracle->backend()->GetSign(id);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << "node " << id << " after update " << update;
    }
  }
}

TEST_P(ControllerTest, SequenceOfUpdatesStaysConsistent) {
  ASSERT_TRUE(ac_->Update("//experimental").ok());
  ASSERT_TRUE(ac_->Update("//regular/med").ok());
  ASSERT_TRUE(ac_->Update("//patient[psn=\"099\"]").ok());
  // Oracle comparison after the whole sequence.
  auto oracle = std::make_unique<AccessController>(MakeBackend(GetParam()));
  ASSERT_TRUE(
      oracle->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
  ASSERT_TRUE(oracle->SetPolicy(testdata::kHospitalPolicy).ok());
  for (const char* u : {"//experimental", "//regular/med",
                        "//patient[psn=\"099\"]"}) {
    auto p = xpath::ParsePath(u);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(oracle->backend()->DeleteWhere(*p).ok());
  }
  ASSERT_TRUE(oracle->ReannotateFull().ok());
  auto all = xpath::ParsePath("//*");
  auto ids = ac_->backend()->EvaluateQuery(*all);
  ASSERT_TRUE(ids.ok());
  for (UniversalId id : *ids) {
    EXPECT_EQ(*ac_->backend()->GetSign(id), *oracle->backend()->GetSign(id))
        << "node " << id;
  }
}

// The paper's motivating insert case, inverted: inserting a treatment under
// an accessible patient must flip that patient to denied (rule R3 now
// applies).
TEST_P(ControllerTest, InsertTreatmentDeniesPatient) {
  auto before = ac_->Query("//patient[psn=\"099\"]");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_TRUE(before->granted);
  auto st = ac_->Insert(
      "//patient[psn=\"099\"]",
      "<treatment><regular><med>metformin</med><bill>50</bill></regular>"
      "</treatment>");
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->nodes_inserted, 4u);
  EXPECT_GT(st->rules_triggered, 0u);
  auto after = ac_->Query("//patient[psn=\"099\"]");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kAccessDenied);
  // The new regular node must be accessible (rule R6) even though it did
  // not exist when the policy was annotated.
  auto regulars = ac_->Query("//patient[psn=\"099\"]//regular");
  ASSERT_TRUE(regulars.ok()) << regulars.status();
  EXPECT_TRUE(regulars->granted);
}

// Inserting a subtree whose *descendants* matter: a patient with an
// experimental treatment inside — rule R5 must catch it.
TEST_P(ControllerTest, InsertDeepFragmentReannotatesDescendantRules) {
  auto st = ac_->Insert("//patients",
                        "<patient><psn>777</psn><name>new person</name>"
                        "<treatment><experimental><test>x</test>"
                        "<bill>9000</bill></experimental></treatment>"
                        "</patient>");
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->nodes_inserted, 7u);
  auto q = ac_->Query("//patient[psn=\"777\"]");
  ASSERT_FALSE(q.ok());  // R3/R5 deny it
  auto name = ac_->Query("//patient[psn=\"777\"]/name");
  ASSERT_TRUE(name.ok()) << name.status();  // R2 allows the name
  EXPECT_TRUE(name->granted);
}

// Insert + partial re-annotation equals from-scratch annotation.
TEST_P(ControllerTest, InsertReannotationMatchesFullAnnotation) {
  struct Case {
    const char* target;
    const char* fragment;
  };
  const Case kCases[] = {
      {"//patient[psn=\"099\"]", "<treatment/>"},
      {"//patients", "<patient><psn>500</psn><name>x</name></patient>"},
      {"//dept", "<patients/>"},
      {"//treatment[regular]",
       "<experimental><test>t</test><bill>1</bill></experimental>"},
  };
  for (const Case& c : kCases) {
    auto partial = std::make_unique<AccessController>(MakeBackend(GetParam()));
    ASSERT_TRUE(
        partial->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
    ASSERT_TRUE(partial->SetPolicy(testdata::kHospitalPolicy).ok());
    auto st = partial->Insert(c.target, c.fragment);
    ASSERT_TRUE(st.ok()) << st.status() << " for " << c.target;

    auto oracle = std::make_unique<AccessController>(MakeBackend(GetParam()));
    ASSERT_TRUE(
        oracle->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
    ASSERT_TRUE(oracle->SetPolicy(testdata::kHospitalPolicy).ok());
    auto target = xpath::ParsePath(c.target);
    auto fragment = xml::ParseDocument(c.fragment);
    ASSERT_TRUE(target.ok() && fragment.ok());
    ASSERT_TRUE(oracle->backend()->InsertUnder(*target, *fragment).ok());
    ASSERT_TRUE(oracle->ReannotateFull().ok());

    auto all = xpath::ParsePath("//*");
    auto ids = partial->backend()->EvaluateQuery(*all);
    auto oracle_ids = oracle->backend()->EvaluateQuery(*all);
    ASSERT_TRUE(ids.ok() && oracle_ids.ok());
    ASSERT_EQ(*ids, *oracle_ids) << c.target;
    for (UniversalId id : *ids) {
      EXPECT_EQ(*partial->backend()->GetSign(id),
                *oracle->backend()->GetSign(id))
          << "node " << id << " after insert under " << c.target;
    }
  }
}

TEST_P(ControllerTest, InsertRejectsUnknownLabels) {
  auto st = ac_->Insert("//patients", "<alien/>");
  if (GetParam() == BackendKind::kNative) {
    // The native store has no schema to validate against; it accepts.
    EXPECT_TRUE(st.ok());
  } else {
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_P(ControllerTest, InsertUnderNoMatchIsNoop) {
  auto st = ac_->Insert("//nosuchparent", "<treatment/>");
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->nodes_inserted, 0u);
}

TEST_P(ControllerTest, UpdateWithoutPolicyFails) {
  auto bare = std::make_unique<AccessController>(MakeBackend(GetParam()));
  ASSERT_TRUE(
      bare->Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
  EXPECT_FALSE(bare->Update("//patient").ok());
}

TEST_P(ControllerTest, MalformedInputsSurfaceParseErrors) {
  EXPECT_EQ(ac_->Query("patient").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ac_->Update("][").status().code(), StatusCode::kParseError);
  auto bad = std::make_unique<AccessController>(MakeBackend(GetParam()));
  EXPECT_EQ(bad->Load("<!BOGUS>", "<a/>").code(), StatusCode::kParseError);
  EXPECT_EQ(bad->Load(testdata::kHospitalDtd, "<a").code(),
            StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(Backends, ControllerTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kRow,
                                           BackendKind::kColumn),
                         [](const auto& info) { return KindName(info.param); });

// Native-specific: minimal-storage annotation (attribute only when the sign
// differs from the default).
TEST(NativeBackendTest, SignAttributeOnlyOnNonDefaultNodes) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  NativeXmlBackend backend;
  ASSERT_TRUE(backend.Load(*dtd, *doc).ok());
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(AnnotateFull(&backend, *p).ok());
  size_t with_attr = 0;
  const xml::Document& annotated = backend.document();
  for (xml::NodeId n = 0; n < annotated.size(); ++n) {
    if (!annotated.IsAlive(n)) continue;
    if (annotated.node(n).kind != xml::NodeKind::kElement) continue;
    if (annotated.GetAttribute(n, "sign").has_value()) ++with_attr;
  }
  // Exactly the accessible nodes carry the attribute (deny default).
  EXPECT_EQ(with_attr, policy::AccessibleNodes(*p, *doc).size());
}

// Native-specific: the paper's XQuery annotation path drives the same store
// as the programmatic annotator.
TEST(NativeBackendTest, RunXQueryAnnotatesLikeAnnotator) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  NativeXmlBackend backend;
  ASSERT_TRUE(backend.Load(*dtd, *doc).ok());
  ASSERT_TRUE(backend.ResetAllSigns('-').ok());
  auto r = backend.RunXQuery(R"(
    for $n := doc("xmlgen")(
        (//patient union //patient/name union //regular)
        except (//patient[treatment] union //patient[.//experimental]))
    return xmlac:annotate($n, "+")
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  // Same signs as AnnotateFull with the equivalent policy.
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  NativeXmlBackend oracle;
  ASSERT_TRUE(oracle.Load(*dtd, *doc).ok());
  ASSERT_TRUE(AnnotateFull(&oracle, *p).ok());
  auto all = xpath::ParsePath("//*");
  ASSERT_TRUE(all.ok());
  auto ids = backend.EvaluateQuery(*all);
  ASSERT_TRUE(ids.ok());
  for (UniversalId id : *ids) {
    EXPECT_EQ(*backend.GetSign(id), *oracle.GetSign(id)) << id;
  }
  // Read-only XQuery works too.
  auto c = backend.RunXQuery("count(doc(\"xmlgen\")//patient)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(std::get<double>(c->v), 3.0);
}

// Native-specific: the compiled annotation XQuery has the paper's
// ((R1 union R2 union R6) except (R3 union R5)) shape (Sec. 5.2).
TEST(NativeBackendTest, CompiledAnnotationXQueryShape) {
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  policy::Policy optimized = policy::EliminateRedundantRules(*p);
  std::vector<size_t> all(optimized.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  auto q = NativeXmlBackend::CompileAnnotationXQuery(
      optimized, all, policy::CombineOp::kGrantsExceptDenies);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(*q,
            "doc(\"xmlgen\")((//patient union //patient/name union //regular)"
            " except (//patient[treatment] union"
            " //patient[.//experimental]))");
  // kGrants drops the EXCEPT clause.
  q = NativeXmlBackend::CompileAnnotationXQuery(optimized, all,
                                                policy::CombineOp::kGrants);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->find(" except "), std::string::npos);
  // A subset with no contributing rules is NotFound.
  q = NativeXmlBackend::CompileAnnotationXQuery(optimized, {},
                                                policy::CombineOp::kGrants);
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

// Relational-specific: the compiled annotation SQL has the paper's
// (Q1 UNION ... EXCEPT (...)) shape.
TEST(RelationalBackendTest, AnnotationSqlShape) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  RelationalBackend backend;
  ASSERT_TRUE(backend.Load(*dtd, *doc).ok());
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  std::vector<size_t> all(p->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  auto sql = backend.CompileAnnotationSql(
      *p, all, policy::CombineOp::kGrantsExceptDenies);
  ASSERT_TRUE(sql.ok()) << sql.status();
  std::string text = sql->ToSql();
  EXPECT_NE(text.find("UNION"), std::string::npos);
  EXPECT_NE(text.find("EXCEPT"), std::string::npos);
  // The compiled SQL is parseable by our own dialect.
  EXPECT_TRUE(reldb::ParseSql(text).ok());
}

// After identical InsertUnder sequences, native and relational backends
// assign the same fresh universal ids (relied upon by the facade when
// mirrored stores must stay comparable).
TEST(BackendIdAgreementTest, InsertAssignsSameIdsAcrossBackends) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  NativeXmlBackend native;
  RelationalBackend relational;
  ASSERT_TRUE(native.Load(*dtd, *doc).ok());
  ASSERT_TRUE(relational.Load(*dtd, *doc).ok());

  auto target = xpath::ParsePath("//patient[psn=\"099\"]");
  auto fragment = xml::ParseDocument(
      "<treatment><regular><med>aspirin</med><bill>5</bill></regular>"
      "</treatment>");
  ASSERT_TRUE(target.ok() && fragment.ok());
  ASSERT_TRUE(native.InsertUnder(*target, *fragment).ok());
  ASSERT_TRUE(relational.InsertUnder(*target, *fragment).ok());
  // Second insert to exercise the counter.
  auto target2 = xpath::ParsePath("//patients");
  auto fragment2 =
      xml::ParseDocument("<patient><psn>500</psn><name>id test</name></patient>");
  ASSERT_TRUE(target2.ok() && fragment2.ok());
  ASSERT_TRUE(native.InsertUnder(*target2, *fragment2).ok());
  ASSERT_TRUE(relational.InsertUnder(*target2, *fragment2).ok());

  for (const char* q : {"//regular", "//med", "//patient", "//psn",
                        "//treatment", "//name"}) {
    auto path = xpath::ParsePath(q);
    ASSERT_TRUE(path.ok());
    auto a = native.EvaluateQuery(*path);
    auto b = relational.EvaluateQuery(*path);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << q;
  }
}

TEST(RelationalBackendTest, LoadViaSqlAndDirectAgree) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  RelationalOptions via_sql;
  via_sql.load_via_sql = true;
  RelationalOptions direct;
  direct.load_via_sql = false;
  RelationalBackend a(via_sql), b(direct);
  ASSERT_TRUE(a.Load(*dtd, *doc).ok());
  ASSERT_TRUE(b.Load(*dtd, *doc).ok());
  EXPECT_EQ(a.NodeCount(), b.NodeCount());
  auto q = xpath::ParsePath("//patient[treatment]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*a.EvaluateQuery(*q), *b.EvaluateQuery(*q));
}

}  // namespace
}  // namespace xmlac::engine
