#include "shred/xpath_to_sql.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "reldb/executor.h"
#include "shred/shredder.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::shred {
namespace {

// End-to-end oracle test: for each XPath expression the translated SQL over
// the shredded document must return exactly the NodeIds the tree evaluator
// returns.  This is the correctness core of the ShreX substitution.
class XPathToSqlTest : public ::testing::TestWithParam<reldb::StorageKind> {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    mapping_ = std::make_unique<ShredMapping>(*dtd);
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(*doc);
    catalog_ = std::make_unique<reldb::Catalog>(GetParam());
    ASSERT_TRUE(mapping_->CreateTables(catalog_.get()).ok());
    ASSERT_TRUE(ShredToCatalog(doc_, *mapping_, catalog_.get(), '-').ok());
    exec_ = std::make_unique<reldb::Executor>(catalog_.get());
  }

  std::vector<int64_t> SqlIds(std::string_view expr) {
    auto path = xpath::ParsePath(expr);
    EXPECT_TRUE(path.ok()) << path.status();
    auto tr = TranslateXPath(*path, *mapping_);
    EXPECT_TRUE(tr.ok()) << tr.status() << " for " << expr;
    if (!tr.ok() || tr->empty) return {};
    auto rs = exec_->ExecuteSelect(tr->query);
    EXPECT_TRUE(rs.ok()) << rs.status() << " for " << tr->query.ToSql();
    if (!rs.ok()) return {};
    auto ids = rs->IdColumn();
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::vector<int64_t> TreeIds(std::string_view expr) {
    auto path = xpath::ParsePath(expr);
    EXPECT_TRUE(path.ok()) << path.status();
    std::vector<int64_t> ids;
    for (xml::NodeId id : xpath::Evaluate(*path, doc_)) {
      ids.push_back(static_cast<int64_t>(id));
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  void ExpectAgreement(std::string_view expr) {
    EXPECT_EQ(SqlIds(expr), TreeIds(expr)) << expr;
  }

  std::unique_ptr<ShredMapping> mapping_;
  xml::Document doc_;
  std::unique_ptr<reldb::Catalog> catalog_;
  std::unique_ptr<reldb::Executor> exec_;
};

TEST_P(XPathToSqlTest, RootAndChildChains) {
  ExpectAgreement("/hospital");
  ExpectAgreement("/hospital/dept");
  ExpectAgreement("/hospital/dept/patients/patient");
  ExpectAgreement("/hospital/dept/patients/patient/name");
}

TEST_P(XPathToSqlTest, DescendantAxis) {
  ExpectAgreement("//patient");
  ExpectAgreement("//name");
  ExpectAgreement("//bill");
  ExpectAgreement("//hospital");
  ExpectAgreement("/hospital//name");
  ExpectAgreement("//patient//bill");
  ExpectAgreement("//staff//name");
}

TEST_P(XPathToSqlTest, Wildcards) {
  ExpectAgreement("/*");
  ExpectAgreement("/hospital/*");
  ExpectAgreement("//patient/*");
  ExpectAgreement("//*");
  ExpectAgreement("//treatment/*");
}

TEST_P(XPathToSqlTest, ExistencePredicates) {
  ExpectAgreement("//patient[treatment]");
  ExpectAgreement("//patient[name]");
  ExpectAgreement("//patient[.//experimental]");
  ExpectAgreement("//dept[patients/patient]");
  ExpectAgreement("//patient[treatment[regular]]");
}

TEST_P(XPathToSqlTest, ValuePredicates) {
  ExpectAgreement("//regular[med=\"celecoxib\"]");
  ExpectAgreement("//regular[med=\"enoxaparin\"]");
  ExpectAgreement("//patient[psn=\"099\"]");
  ExpectAgreement("//regular[bill > 1000]");
  ExpectAgreement("//regular[bill > 500]");
  ExpectAgreement("//experimental[bill >= 1600]");
  ExpectAgreement("//bill[. > 1000]");
  ExpectAgreement("//med[. = \"enoxaparin\"]");
  ExpectAgreement("//treatment[.//bill != 700]");
}

TEST_P(XPathToSqlTest, Conjunctions) {
  ExpectAgreement("//patient[treatment and name]");
  ExpectAgreement("//patient[treatment and psn=\"033\"]");
  ExpectAgreement("//patient[treatment][name]");
}

TEST_P(XPathToSqlTest, PaperPolicyRuleScopes) {
  // Every resource of Table 1.
  for (const char* rule :
       {"//patient", "//patient/name", "//patient[treatment]",
        "//patient[treatment]/name", "//patient[.//experimental]",
        "//regular", "//regular[med=\"celecoxib\"]",
        "//regular[bill > 1000]"}) {
    ExpectAgreement(rule);
  }
}

TEST_P(XPathToSqlTest, EmptyBySchema) {
  auto path = xpath::ParsePath("/nosuchroot");
  ASSERT_TRUE(path.ok());
  auto tr = TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok()) << tr.status();
  EXPECT_TRUE(tr->empty);
  // A child step not allowed by the schema.
  path = xpath::ParsePath("/hospital/patient");
  tr = TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok());
  EXPECT_TRUE(tr->empty);
  // Unknown label under descendant axis.
  path = xpath::ParsePath("//alien");
  tr = TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok());
  EXPECT_TRUE(tr->empty);
}

TEST_P(XPathToSqlTest, ComparisonOnStructureOnlyElementIsEmpty) {
  // patient has no text content; `[. = "x"]` can never hold.
  auto path = xpath::ParsePath("//patient[. = \"x\"]");
  ASSERT_TRUE(path.ok());
  auto tr = TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok());
  EXPECT_TRUE(tr->empty);
}

TEST_P(XPathToSqlTest, ResultTablesReported) {
  auto path = xpath::ParsePath("//patient/*");
  ASSERT_TRUE(path.ok());
  auto tr = TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok());
  std::vector<std::string> expected = {"name", "psn", "treatment"};
  EXPECT_EQ(tr->result_tables, expected);
}

TEST_P(XPathToSqlTest, TranslatedSqlIsParseable) {
  auto path = xpath::ParsePath("//patient[.//experimental]/name");
  ASSERT_TRUE(path.ok());
  auto tr = TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok());
  std::string sql = tr->query.ToSql();
  auto reparsed = reldb::ParseSql(sql);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << sql;
  auto rs = exec_->Execute(*reparsed);
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), TreeIds("//patient[.//experimental]/name").size());
}

TEST_P(XPathToSqlTest, RecursiveSchemaUnsupported) {
  auto dtd = xml::ParseDtd("<!ELEMENT a (a?, b)><!ELEMENT b (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  ShredMapping rec(*dtd);
  auto path = xpath::ParsePath("//b");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(TranslateXPath(*path, rec).status().code(),
            StatusCode::kUnsupported);
}

TEST_P(XPathToSqlTest, RelativePathRejected) {
  xpath::Path rel;  // empty, non-absolute
  EXPECT_EQ(TranslateXPath(rel, *mapping_).status().code(),
            StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Engines, XPathToSqlTest,
                         ::testing::Values(reldb::StorageKind::kRowStore,
                                           reldb::StorageKind::kColumnStore),
                         [](const auto& info) {
                           return info.param == reldb::StorageKind::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

}  // namespace
}  // namespace xmlac::shred
