// The brute-force oracle itself, and the conflict-resolution corner cases
// the differential harness is built to catch: empty policies under every
// (ds, cr) pair, duplicate rules, and rule sets where A and D select the
// same node set — oracle vs engine on all three backends.

#include "testing/oracle.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "testing/diff.h"
#include "testing/generators.h"
#include "xml/parser.h"
#include "xpath/containment.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::testing {
namespace {

constexpr char kDtd[] =
    "<!ELEMENT r (x*, y*)>\n"
    "<!ELEMENT x (#PCDATA)>\n"
    "<!ELEMENT y (x*)>\n";
constexpr char kXml[] = "<r><x>1</x><x>2</x><y><x>3</x></y></r>";

Instance MakeInstance(const std::string& policy_text) {
  Instance instance;
  instance.dtd_text = kDtd;
  auto dtd = xml::ParseDtd(kDtd);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  instance.dtd = *dtd;
  auto doc = xml::ParseDocument(kXml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  instance.doc = std::move(*doc);
  auto policy = policy::ParsePolicy(policy_text);
  EXPECT_TRUE(policy.ok()) << policy.status();
  instance.policy = *policy;
  instance.seed = 7;
  return instance;
}

xpath::Path P(const std::string& text) {
  auto parsed = xpath::ParsePath(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status();
  return *parsed;
}

// ---------------------------------------------------------------------------
// Naive evaluation agrees with the production evaluator

TEST(OracleEvalTest, AgreesWithProductionEvaluatorOnRandomPaths) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    InstanceOptions options;
    options.seed = seed;
    Instance instance = GenerateInstance(options);
    RandomPathGenerator paths(instance.doc, seed * 17 + 1);
    for (int i = 0; i < 60; ++i) {
      xpath::Path q = paths.Next();
      EXPECT_EQ(OracleEval(q, instance.doc),
                xpath::Evaluate(q, instance.doc))
          << "seed " << seed << " query " << xpath::ToString(q);
    }
  }
}

TEST(OracleEvalTest, VirtualDocumentNodeSemantics) {
  auto doc = xml::ParseDocument(kXml);
  ASSERT_TRUE(doc.ok());
  // `/r` selects the root; `//r` also reaches it (the virtual document node
  // has the root as its only child, descendant = one or more child edges).
  EXPECT_EQ(OracleEval(P("/r"), *doc).size(), 1u);
  EXPECT_EQ(OracleEval(P("//r"), *doc).size(), 1u);
  EXPECT_EQ(OracleEval(P("//x"), *doc).size(), 3u);
  EXPECT_EQ(OracleEval(P("/r/x"), *doc).size(), 2u);
  EXPECT_EQ(OracleEval(P("//y/x"), *doc).size(), 1u);
  EXPECT_EQ(OracleEval(P("//x[.=\"2\"]"), *doc).size(), 1u);
  EXPECT_TRUE(OracleEval(P("/x"), *doc).empty());
}

// ---------------------------------------------------------------------------
// Containment by canonical-model enumeration

TEST(OracleContainsTest, KnownCases) {
  auto yes = [](const char* p, const char* q) {
    auto r = OracleContains(P(p), P(q));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(*r) << p << " should be contained in " << q;
  };
  auto no = [](const char* p, const char* q) {
    auto r = OracleContains(P(p), P(q));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(*r) << p << " should NOT be contained in " << q;
  };
  yes("/a/b", "//b");
  yes("/a/b", "/a/*");
  yes("//a/b", "//b");
  yes("/a/b[c]", "/a/b");
  yes("//a//b//c", "//c");
  yes("/a/b/c", "/a//c");
  no("//b", "/a/b");
  no("/a/b", "/a/b[c]");
  no("/a//c", "/a/b/c");  // the // edge admits longer chains
  no("//a", "//b");
  yes("/a/*/c", "/a//c");
  no("/a//c", "/a/*/c");
}

TEST(OracleContainsTest, UnsupportedForComparisons) {
  EXPECT_FALSE(OracleContains(P("//a[b=\"1\"]"), P("//a")).ok());
}

TEST(OracleContainsTest, EngineContainmentIsSound) {
  // Whenever the production homomorphism test claims containment, the
  // exact canonical-model enumeration must agree.
  InstanceOptions options;
  options.seed = 11;
  Instance instance = GenerateInstance(options);
  PathGenOptions no_cmp;
  no_cmp.allow_comparisons = false;
  RandomPathGenerator paths(instance.doc, 23, no_cmp);
  int checked = 0;
  for (int i = 0; i < 200; ++i) {
    xpath::Path p = paths.Next();
    xpath::Path q = paths.Next();
    auto exact = OracleContains(p, q);
    if (!exact.ok()) continue;
    ++checked;
    if (xpath::Contains(p, q)) {
      EXPECT_TRUE(*exact) << xpath::ToString(p) << " vs "
                          << xpath::ToString(q);
    }
  }
  EXPECT_GT(checked, 50);
}

// ---------------------------------------------------------------------------
// Conflict-resolution corner cases (oracle semantics pinned explicitly,
// then oracle vs engine on all three backends via CheckAnnotation)

const char* kDsCr[4][2] = {
    {"default allow\nconflict allow\n", "aa"},
    {"default allow\nconflict deny\n", "ad"},
    {"default deny\nconflict allow\n", "da"},
    {"default deny\nconflict deny\n", "dd"},
};

TEST(ConflictCornersTest, EmptyPolicyUnderEveryDsCrPair) {
  for (const auto& combo : kDsCr) {
    Instance instance = MakeInstance(combo[0]);
    bool ds_allow = instance.policy.default_semantics() ==
                    policy::DefaultSemantics::kAllow;
    for (const auto& [id, sign] : OracleSigns(instance.policy, instance.doc)) {
      EXPECT_EQ(sign, ds_allow ? '+' : '-')
          << combo[1] << " node " << id;
    }
    EXPECT_EQ(CheckAnnotation(instance), "") << combo[1];
  }
}

TEST(ConflictCornersTest, DuplicateRulesAreIdempotent) {
  for (const auto& combo : kDsCr) {
    Instance once = MakeInstance(std::string(combo[0]) +
                                 "allow //x\ndeny //y\n");
    Instance twice = MakeInstance(std::string(combo[0]) +
                                  "allow //x\nallow //x\n"
                                  "deny //y\ndeny //y\n");
    EXPECT_EQ(OracleSigns(once.policy, once.doc),
              OracleSigns(twice.policy, twice.doc))
        << combo[1];
    EXPECT_EQ(CheckAnnotation(twice), "") << combo[1];
  }
}

TEST(ConflictCornersTest, AllowAndDenySelectingTheSameNodeSet) {
  // A = D = {the three x elements}.  Table 2:
  //   (+, allow-overrides): U - (D - A) = U        -> everything accessible
  //   (-, allow-overrides): A                      -> exactly the x nodes
  //   (+, deny-overrides):  U - D                  -> everything but x
  //   (-, deny-overrides):  A - D = {}             -> nothing accessible
  struct Expectation {
    const char* header;
    bool x_accessible;
    bool others_accessible;
  };
  const Expectation kExpectations[] = {
      {"default allow\nconflict allow\n", true, true},
      {"default deny\nconflict allow\n", true, false},
      {"default allow\nconflict deny\n", false, true},
      {"default deny\nconflict deny\n", false, false},
  };
  for (const Expectation& expect : kExpectations) {
    Instance instance =
        MakeInstance(std::string(expect.header) + "allow //x\ndeny //x\n");
    std::map<xml::NodeId, char> signs =
        OracleSigns(instance.policy, instance.doc);
    for (xml::NodeId id : instance.doc.AllElements()) {
      bool is_x = instance.doc.node(id).label == "x";
      EXPECT_EQ(signs.at(id) == '+',
                is_x ? expect.x_accessible : expect.others_accessible)
          << expect.header << " at " << instance.doc.PathOf(id);
    }
    EXPECT_EQ(CheckAnnotation(instance), "") << expect.header;
  }
}

// ---------------------------------------------------------------------------
// Rule node-set cache: differential coverage and the stale-cache fault

TEST(RuleCacheDiffTest, CachedAndUncachedAnnotationMatchTheOracle) {
  // CheckAnnotation with the cache on runs the per-backend controllers plus
  // the shared-cache cold/warm replay; with the cache off it runs the plain
  // evaluation path.  Both must agree with the oracle under every (ds, cr).
  for (const auto& combo : kDsCr) {
    Instance instance =
        MakeInstance(std::string(combo[0]) + "allow //x\ndeny //y\n");
    DiffOptions cached;
    EXPECT_EQ(CheckAnnotation(instance, cached), "") << combo[1];
    DiffOptions uncached;
    uncached.rule_cache = false;
    EXPECT_EQ(CheckAnnotation(instance, uncached), "") << combo[1];
  }
}

TEST(RuleCacheDiffTest, StaleCacheInjectionIsCaught) {
  // Annotation warms the cache with //x's bitmap; the insert then adds a
  // new x.  With the trigger-driven evictions sabotaged the stale bitmap
  // survives the epoch change, the partial re-annotation never signs the
  // new node, and the differential check must report the divergence.
  Instance instance = MakeInstance("default deny\nallow //x\n");
  instance.updates.push_back(
      engine::BatchOp::Insert("/r/y", "<x>9</x>"));
  EXPECT_EQ(CheckReannotation(instance), "");
  DiffOptions buggy;
  buggy.bug = InjectedBug::kStaleCache;
  EXPECT_NE(CheckReannotation(instance, buggy), "");
}

// ---------------------------------------------------------------------------
// Oracle updates and the stateful model

TEST(OracleModelTest, UpdatesAndPerSubjectQueries) {
  auto doc = xml::ParseDocument(kXml);
  ASSERT_TRUE(doc.ok());
  OracleModel model;
  model.Load(*doc);
  ASSERT_TRUE(model.AddSubject("reader", "default allow\ndeny //y\n").ok());
  ASSERT_TRUE(model.AddSubject("admin", "default allow\n").ok());

  auto before = model.Query("reader", P("//x"));
  ASSERT_TRUE(before.ok());
  // //y/x is under no deny rule itself (deny //y covers only y), so all
  // three x's stay accessible.
  EXPECT_TRUE(before->granted);
  EXPECT_EQ(before->selected, 3u);

  auto denied = model.Query("reader", P("//y"));
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->granted);
  EXPECT_EQ(denied->accessible, 0u);

  ASSERT_TRUE(model.Apply(engine::BatchOp::Delete("//y")).ok());
  auto after = model.Query("admin", P("//x"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->selected, 2u);  // the x under y went with the subtree

  ASSERT_TRUE(
      model.Apply(engine::BatchOp::Insert("/r", "<y><x>9</x></y>")).ok());
  auto inserted = model.Query("admin", P("//y/x"));
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(inserted->selected, 1u);
  EXPECT_FALSE(model.Query("nobody", P("//x")).ok());
}

}  // namespace
}  // namespace xmlac::testing
