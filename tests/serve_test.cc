#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/io.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "engine/access_controller.h"
#include "engine/multi_subject.h"
#include "engine/native_backend.h"
#include "serve/queue.h"
#include "serve/snapshot.h"
#include "workload/hospital.h"
#include "workload/queries.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xmlac::serve {
namespace {

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, FifoAndSize) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    EXPECT_TRUE(q.Push(v));
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 0);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_FALSE(q.TryPush(c));
  // The failed TryPush did not consume the caller's item.
  EXPECT_EQ(c, 3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.TryPush(c));
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerMakesRoom) {
  BoundedQueue<int> q(1);
  int first = 1;
  ASSERT_TRUE(q.Push(first));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    int second = 2;
    EXPECT_TRUE(q.Push(second));  // blocks: queue is full
    pushed.store(true);
  });
  // The producer cannot complete until we pop.  (No sleep-based assert on
  // "still blocked" — just that the handoff completes and order is kept.)
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  int a = 7, b = 8;
  ASSERT_TRUE(q.Push(a));
  ASSERT_TRUE(q.Push(b));
  q.Close();
  int c = 9;
  EXPECT_FALSE(q.Push(c));  // closed: rejected, caller keeps the item
  EXPECT_EQ(c, 9);
  // Pending items still drain before the nullopt shutdown signal.
  EXPECT_EQ(q.Pop(), 7);
  EXPECT_EQ(q.Pop(), 8);
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_EQ(q.Pop(), std::nullopt);  // idempotent
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] { EXPECT_EQ(q.Pop(), std::nullopt); });
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, PopBatchCoalescesQueuedItems) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(q.Push(v));
  }
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(&batch, 3), 3u);  // capped at max
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopBatch(&batch, 8), 2u);  // drains the rest
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3, 4}));
  q.Close();
  EXPECT_EQ(q.PopBatch(&batch, 8), 0u);  // closed and drained
}

// ---------------------------------------------------------------------------
// Server fixtures

ServerOptions SmallOptions(size_t workers = 2, size_t max_batch = 64) {
  ServerOptions opt;
  opt.workers = workers;
  opt.max_batch = max_batch;
  return opt;
}

xml::Document SmallHospital() {
  workload::HospitalOptions opt;
  opt.departments = 2;
  opt.patients_per_department = 12;
  return workload::HospitalGenerator().Generate(opt);
}

std::unique_ptr<Server> MakeHospitalServer(ServerOptions options) {
  auto dtd = workload::HospitalGenerator::ParseHospitalDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  auto server = std::make_unique<Server>(options);
  Status loaded = server->LoadParsed(*dtd, SmallHospital());
  EXPECT_TRUE(loaded.ok()) << loaded;
  for (size_t i = 0; i < workload::kHospitalSubjectCount; ++i) {
    Status added = server->AddSubject(workload::kHospitalSubjects[i].subject,
                                      workload::kHospitalSubjects[i].policy_text);
    EXPECT_TRUE(added.ok()) << added;
  }
  return server;
}

// A serial oracle controller with the same document and subjects.
std::unique_ptr<engine::MultiSubjectController> MakeOracle() {
  auto dtd = workload::HospitalGenerator::ParseHospitalDtd();
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  auto oracle = std::make_unique<engine::MultiSubjectController>(
      [] { return std::make_unique<engine::NativeXmlBackend>(); });
  Status loaded = oracle->LoadParsed(*dtd, SmallHospital());
  EXPECT_TRUE(loaded.ok()) << loaded;
  for (size_t i = 0; i < workload::kHospitalSubjectCount; ++i) {
    Status added = oracle->AddSubject(workload::kHospitalSubjects[i].subject,
                                      workload::kHospitalSubjects[i].policy_text);
    EXPECT_TRUE(added.ok()) << added;
  }
  return oracle;
}

// ---------------------------------------------------------------------------
// Basic serving semantics

TEST(ServeTest, AnswersMatchDirectControllerQueries) {
  auto server = MakeHospitalServer(SmallOptions());
  ASSERT_TRUE(server->Start().ok());
  auto oracle = MakeOracle();
  const char* kQueries[] = {"//patient", "//patient/name", "//bill",
                            "//treatment", "//staff", "//nobody"};
  for (size_t i = 0; i < workload::kHospitalSubjectCount; ++i) {
    const char* subject = workload::kHospitalSubjects[i].subject;
    for (const char* q : kQueries) {
      ServeResponse served = server->Query(subject, q);
      ASSERT_TRUE(served.status.ok()) << served.status;
      auto direct = oracle->Query(subject, q);
      // engine::Request reports denial as an AccessDenied status; the
      // serving layer reports it as granted=false with an OK status.
      if (direct.ok()) {
        EXPECT_TRUE(served.granted) << subject << " " << q;
        EXPECT_EQ(served.selected, direct->selected);
        EXPECT_EQ(served.accessible, direct->accessible);
      } else {
        EXPECT_EQ(direct.status().code(), StatusCode::kAccessDenied);
        EXPECT_FALSE(served.granted) << subject << " " << q;
      }
    }
  }
  server->Stop();
}

TEST(ServeTest, RejectsMalformedAndUnknown) {
  auto server = MakeHospitalServer(SmallOptions());
  ASSERT_TRUE(server->Start().ok());
  EXPECT_FALSE(server->Query("nurse", "//patient[").status.ok());
  EXPECT_EQ(server->Query("intruder", "//patient").status.code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(server->Update("not an xpath [").status.ok());
  EXPECT_FALSE(server->Insert("//patients", "<unclosed>").status.ok());
  server->Stop();
}

TEST(ServeTest, StopFailsPendingAndLaterSubmissions) {
  auto server = MakeHospitalServer(SmallOptions());
  ASSERT_TRUE(server->Start().ok());
  server->Stop();
  ServeResponse after = server->Query("nurse", "//patient");
  EXPECT_FALSE(after.status.ok());
  server->Stop();  // idempotent

  // Submissions queued on a never-started server also complete on Stop.
  auto cold = MakeHospitalServer(SmallOptions());
  auto pending = cold->SubmitQuery("nurse", "//patient");
  cold->Stop();
  EXPECT_FALSE(pending.get().status.ok());
}

// ---------------------------------------------------------------------------
// Snapshot isolation

TEST(ServeTest, HeldSnapshotIsImmuneToLaterUpdates) {
  auto server = MakeHospitalServer(SmallOptions());
  ASSERT_TRUE(server->Start().ok());

  SnapshotPtr pinned = server->CurrentSnapshot();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch, 1u);
  auto query = xpath::ParsePath("//patient");
  ASSERT_TRUE(query.ok());
  auto before = QuerySnapshot(*pinned, "doctor", *query);
  ASSERT_TRUE(before.ok());
  size_t patients_before = before->selected;
  ASSERT_GT(patients_before, 0u);

  ServeResponse upd = server->Update("//patient[psn=\"000\"]");
  ASSERT_TRUE(upd.status.ok()) << upd.status;
  EXPECT_GT(upd.epoch, 1u);
  EXPECT_GE(server->epoch(), upd.epoch);

  // The pinned snapshot still answers from epoch 1: same node count, even
  // though the live document lost a patient.
  auto after = QuerySnapshot(*pinned, "doctor", *query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->selected, patients_before);

  SnapshotPtr fresh = server->CurrentSnapshot();
  ASSERT_NE(fresh, nullptr);
  EXPECT_GT(fresh->epoch, pinned->epoch);
  auto live = QuerySnapshot(*fresh, "doctor", *query);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->selected, patients_before - 1);
  server->Stop();
}

// ---------------------------------------------------------------------------
// Observability propagation (satellite: thread-local sinks on pool threads)

TEST(ServeTest, WorkerThreadsReportIntoServerRegistry) {
  auto server = MakeHospitalServer(SmallOptions());
  ASSERT_TRUE(server->Start().ok());
  for (int i = 0; i < 8; ++i) {
    ServeResponse r = server->Query("doctor", "//patient");
    ASSERT_TRUE(r.status.ok()) << r.status;
  }
  ServeResponse upd = server->Update("//patient[psn=\"001\"]");
  ASSERT_TRUE(upd.status.ok()) << upd.status;
  server->Stop();

  obs::MetricsSnapshot m = server->SnapshotMetrics();
  // serve.* series are recorded by the pool threads themselves.
  EXPECT_GE(m.counters["serve.read.requests"], 8u);
  EXPECT_GE(m.counters["serve.updates.applied"], 1u);
  EXPECT_GE(m.counters["serve.snapshot.published"], 2u);
  // Deep-layer series (QuerySnapshot's requester.* counters, the writer's
  // snapshot-build timer) only appear here if the thread-local obs context
  // was installed on the pool threads — the assertion the satellite asks
  // for.  Without propagation these record into a null sink and vanish.
  EXPECT_GT(m.counters["requester.nodes_selected"], 0u);
  ASSERT_TRUE(m.histograms.count("serve.request.latency_us"));
  EXPECT_GE(m.histograms["serve.request.latency_us"].count, 8u);
  ASSERT_TRUE(m.histograms.count("serve.snapshot.build_us"));
  ASSERT_TRUE(m.histograms.count("serve.batch.size"));

  // Per-subject engine registries keep working too (annotator.* flows into
  // the replica's own registry, not the server's).
  auto subject_metrics = server->SubjectMetrics("doctor");
  ASSERT_TRUE(subject_metrics.ok());
  EXPECT_GT(subject_metrics->counters["annotator.reannotations"], 0u);
  EXPECT_FALSE(server->SubjectMetrics("intruder").ok());
}

// ---------------------------------------------------------------------------
// Batch coalescing

TEST(ServeTest, PreStartSubmissionsCoalesceIntoOneBatch) {
  // Submissions before Start() queue up; the writer's first PopBatch takes
  // them all, so exactly one re-annotation per subject serves the lot.
  auto batched = MakeHospitalServer(SmallOptions(/*workers=*/1,
                                                 /*max_batch=*/16));
  std::vector<std::future<ServeResponse>> pending;
  for (int i = 0; i < 6; ++i) {
    char psn[8];
    std::snprintf(psn, sizeof(psn), "%03d", i);
    pending.push_back(
        batched->SubmitUpdate(std::string("//patient[psn=\"") + psn + "\"]"));
  }
  ASSERT_TRUE(batched->Start().ok());
  for (auto& f : pending) {
    ServeResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.epoch, 2u);       // one publication for the whole batch
    EXPECT_EQ(r.batch_size, 6u);  // all six coalesced
  }
  batched->Stop();

  uint64_t batched_reannotations = 0;
  for (const std::string& name : batched->SubjectNames()) {
    auto m = batched->SubjectMetrics(name);
    ASSERT_TRUE(m.ok());
    batched_reannotations += m->counters["annotator.reannotations"];
  }
  // One re-annotation per subject, total == subject count.
  EXPECT_EQ(batched_reannotations, workload::kHospitalSubjectCount);

  // The same six updates with max_batch=1 re-annotate once per update.
  auto serial = MakeHospitalServer(SmallOptions(/*workers=*/1,
                                                /*max_batch=*/1));
  std::vector<std::future<ServeResponse>> serial_pending;
  for (int i = 0; i < 6; ++i) {
    char psn[8];
    std::snprintf(psn, sizeof(psn), "%03d", i);
    serial_pending.push_back(
        serial->SubmitUpdate(std::string("//patient[psn=\"") + psn + "\"]"));
  }
  ASSERT_TRUE(serial->Start().ok());
  for (auto& f : serial_pending) {
    ServeResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.batch_size, 1u);
  }
  serial->Stop();
  uint64_t serial_reannotations = 0;
  for (const std::string& name : serial->SubjectNames()) {
    auto m = serial->SubjectMetrics(name);
    ASSERT_TRUE(m.ok());
    serial_reannotations += m->counters["annotator.reannotations"];
  }
  EXPECT_EQ(serial_reannotations, 6 * workload::kHospitalSubjectCount);
  EXPECT_LT(batched_reannotations, serial_reannotations);
}

// ---------------------------------------------------------------------------
// Flight recorder / health snapshot (tentpole: the recorder's view must
// reconcile exactly with a serial tally of what the test submitted)

TEST(ServeHealthTest, HealthSnapshotMatchesSerialTally) {
  constexpr size_t kReads = 32;
  ServerOptions opt = SmallOptions(/*workers=*/2, /*max_batch=*/4);
  opt.recorder.slow_threshold_us = 1;  // retain every request
  auto server = MakeHospitalServer(opt);
  ASSERT_TRUE(server->Start().ok());

  for (size_t i = 0; i < kReads; ++i) {
    ServeResponse r = server->Query("doctor", "//patient");
    ASSERT_TRUE(r.status.ok()) << r.status;
  }
  uint64_t batches = 0;
  uint64_t last_epoch = 0;
  for (int i = 0; i < 3; ++i) {
    char psn[8];
    std::snprintf(psn, sizeof(psn), "%03d", i);
    ServeResponse r =
        server->Update(std::string("//patient[psn=\"") + psn + "\"]");
    ASSERT_TRUE(r.status.ok()) << r.status;
    if (r.epoch != last_epoch) {
      ++batches;
      last_epoch = r.epoch;
    }
  }

  ServerHealth health = server->HealthSnapshot();

  // Request accounting is exact: the recorder saw every read as a
  // query.native request and every published batch as an update.native one.
  constexpr size_t kQn = static_cast<size_t>(obs::RequestClass::kQueryNative);
  constexpr size_t kUn = static_cast<size_t>(obs::RequestClass::kUpdateNative);
  EXPECT_EQ(health.recorder.latency_us[kQn].count, kReads);
  EXPECT_EQ(health.recorder.latency_us[kUn].count, batches);
  EXPECT_EQ(health.recorder.requests_seen, kReads + batches);

  // Percentiles of the streamed histogram are ordered and within range.
  const obs::HistogramData& reads = health.recorder.latency_us[kQn];
  double p50 = reads.Percentile(0.5);
  double p95 = reads.Percentile(0.95);
  double p99 = reads.Percentile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(reads.max));
  EXPECT_GE(p50, static_cast<double>(reads.min));

  // Queue watermarks: at least one request crossed each queue, and no
  // watermark can exceed capacity.
  EXPECT_GE(health.read_queue_watermark, 1u);
  EXPECT_LE(health.read_queue_watermark, opt.read_queue_capacity);
  EXPECT_GE(health.write_queue_watermark, 1u);
  EXPECT_EQ(health.read_queue_depth, 0u);  // everything answered

  // Nothing was dropped at this load, and the drained view is current:
  // the writer published `last_epoch` and HealthSnapshot() drains first.
  EXPECT_EQ(health.recorder.events_dropped, 0u);
  EXPECT_GT(health.recorder.events_appended, 0u);
  EXPECT_EQ(health.epoch, last_epoch);
  EXPECT_EQ(health.recorder.last_epoch, last_epoch);
  EXPECT_EQ(health.recorder_epoch, last_epoch);
  EXPECT_EQ(health.epoch_lag, 0u);

  // Every request was over the 1us retention threshold; retained traces are
  // bounded by the options but the eviction counter accounts for the rest.
  EXPECT_GT(health.recorder.retained_traces, 0u);
  EXPECT_LE(health.recorder.retained_traces, opt.recorder.max_retained_traces);
  EXPECT_EQ(health.recorder.retained_traces + health.recorder.evicted_traces,
            kReads + batches);

  // The flat export carries the same numbers.
  std::string text = HealthText(health);
  EXPECT_NE(text.find("serve.health.epoch_lag 0"), std::string::npos);
  EXPECT_NE(text.find("latency.query.native.count 32"), std::string::npos);
  EXPECT_NE(text.find("obs.ring.dropped 0"), std::string::npos);
  EXPECT_NE(text.find("queue.read_queue.watermark"), std::string::npos);

  server->Stop();
}

TEST(ServeHealthTest, DumpFlightRecorderWritesLoadableTrace) {
  ServerOptions opt = SmallOptions();
  opt.recorder.slow_threshold_us = 1;
  auto server = MakeHospitalServer(opt);
  ASSERT_TRUE(server->Start().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->Query("doctor", "//patient").status.ok());
  }
  std::string dir = ::testing::TempDir() + "serve_flight_dump";
  Status dumped = server->DumpFlightRecorder(dir);
  ASSERT_TRUE(dumped.ok()) << dumped;
  server->Stop();

  auto trace = ReadFile(dir + "/trace.json");
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->front(), '{');
  EXPECT_EQ(trace->back(), '}');
  EXPECT_NE(trace->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->find("request query.native"), std::string::npos);
  EXPECT_NE(trace->find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace->find("worker-0"), std::string::npos);

  auto health = ReadFile(dir + "/health.txt");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_NE(health->find("obs.ring.appended "), std::string::npos);
  EXPECT_NE(health->find("latency.query.native.count 4"), std::string::npos);
}

TEST(ServeHealthTest, RecorderCanBeDisabled) {
  ServerOptions opt = SmallOptions();
  opt.flight_recorder = false;
  auto server = MakeHospitalServer(opt);
  ASSERT_TRUE(server->Start().ok());
  ASSERT_TRUE(server->Query("doctor", "//patient").status.ok());
  EXPECT_EQ(server->flight_recorder(), nullptr);
  ServerHealth health = server->HealthSnapshot();
  EXPECT_EQ(health.recorder.requests_seen, 0u);
  EXPECT_EQ(health.epoch, 1u);
  EXPECT_FALSE(server->DumpFlightRecorder("/tmp/never").ok());
  server->Stop();
}

// ---------------------------------------------------------------------------
// Concurrency stress with a serial oracle
//
// N reader threads race one updater over the hospital document.  Every
// served answer is recorded with the epoch it was computed against; every
// update response records the epoch whose publication included it.  The
// oracle then replays the updates serially — batch by batch, in epoch
// order — on a fresh controller, rebuilding each epoch's snapshot, and
// every recorded answer must match QuerySnapshot against its epoch's
// oracle snapshot exactly.

struct RecordedRead {
  uint64_t epoch;
  size_t subject;
  size_t query;
  bool granted;
  size_t selected;
  size_t accessible;
};

TEST(ServeStressTest, ConcurrentReadsMatchSerialOraclePerEpoch) {
  constexpr size_t kReaders = 4;
  constexpr size_t kReadsPerReader = 120;
  constexpr size_t kUpdaterOps = 24;

  auto server = MakeHospitalServer(SmallOptions(/*workers=*/4,
                                                /*max_batch=*/8));
  ASSERT_TRUE(server->Start().ok());

  std::vector<std::string> queries;
  {
    workload::QueryWorkloadOptions opt;
    opt.count = 24;
    for (const auto& q :
         workload::GenerateQueries(SmallHospital(), opt)) {
      queries.push_back(xpath::ToString(q));
    }
  }

  // Updates: delete patient NNN, then insert a replacement under //patients
  // (keeps the document from draining and exercises both batch-op kinds).
  std::vector<engine::BatchOp> ops;
  for (size_t i = 0; i < kUpdaterOps / 2; ++i) {
    char psn[8];
    std::snprintf(psn, sizeof(psn), "%03d", static_cast<int>(i));
    ops.push_back(engine::BatchOp::Delete(std::string("//patient[psn=\"") +
                                          psn + "\"]"));
    ops.push_back(engine::BatchOp::Insert(
        "//patients", std::string("<patient><psn>5") + psn +
                          "</psn><name>stress test</name></patient>"));
  }

  std::vector<std::vector<RecordedRead>> recorded(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      recorded[r].reserve(kReadsPerReader);
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        size_t s = (r + i) % workload::kHospitalSubjectCount;
        size_t q = (r * 13 + i) % queries.size();
        ServeResponse resp =
            server->Query(workload::kHospitalSubjects[s].subject, queries[q]);
        ASSERT_TRUE(resp.status.ok()) << resp.status;
        recorded[r].push_back({resp.epoch, s, q, resp.granted, resp.selected,
                               resp.accessible});
      }
    });
  }

  // Updates indexed by the epoch that published them; submission order is
  // preserved (single updater, FIFO queue), so within an epoch the oracle
  // replays ops in the exact order the writer applied them.
  std::map<uint64_t, std::vector<engine::BatchOp>> ops_by_epoch;
  std::thread updater([&] {
    for (const engine::BatchOp& op : ops) {
      ServeResponse resp =
          op.kind == engine::BatchOp::Kind::kDelete
              ? server->Update(op.xpath)
              : server->Insert(op.xpath, op.fragment_xml);
      ASSERT_TRUE(resp.status.ok()) << resp.status;
      ops_by_epoch[resp.epoch].push_back(op);
    }
  });

  for (std::thread& t : readers) t.join();
  updater.join();
  uint64_t final_epoch = server->epoch();
  server->Stop();

  // --- Serial replay -----------------------------------------------------
  auto oracle = MakeOracle();
  std::map<uint64_t, SnapshotPtr> oracle_snapshots;
  {
    auto initial = BuildSnapshot(*oracle, 1);
    ASSERT_TRUE(initial.ok()) << initial.status();
    oracle_snapshots[1] = *initial;
  }
  uint64_t epoch = 1;
  for (const auto& [published_epoch, batch] : ops_by_epoch) {
    // Epochs advance by exactly one per published batch, with no gaps.
    ASSERT_EQ(published_epoch, epoch + 1);
    auto applied = oracle->ApplyBatch(batch);
    ASSERT_TRUE(applied.ok()) << applied.status();
    epoch = published_epoch;
    auto snap = BuildSnapshot(*oracle, epoch);
    ASSERT_TRUE(snap.ok()) << snap.status();
    oracle_snapshots[epoch] = *snap;
  }
  EXPECT_EQ(epoch, final_epoch);

  size_t checked = 0;
  for (const auto& reader_log : recorded) {
    for (const RecordedRead& read : reader_log) {
      auto it = oracle_snapshots.find(read.epoch);
      ASSERT_NE(it, oracle_snapshots.end())
          << "served answer cites unknown epoch " << read.epoch;
      auto query = xpath::ParsePath(queries[read.query]);
      ASSERT_TRUE(query.ok());
      auto expected = QuerySnapshot(
          *it->second, workload::kHospitalSubjects[read.subject].subject,
          *query);
      ASSERT_TRUE(expected.ok()) << expected.status();
      EXPECT_EQ(read.granted, expected->granted)
          << "epoch " << read.epoch << " subject "
          << workload::kHospitalSubjects[read.subject].subject << " query "
          << queries[read.query];
      EXPECT_EQ(read.selected, expected->selected);
      EXPECT_EQ(read.accessible, expected->accessible);
      ++checked;
    }
  }
  EXPECT_EQ(checked, kReaders * kReadsPerReader);
}

// ---------------------------------------------------------------------------
// Durability (docs/durability.md)

std::string DurableDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/xmlac_serve_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ServerOptions DurableOptions(const std::string& dir,
                             uint64_t checkpoint_every = 0) {
  ServerOptions opt = SmallOptions();
  opt.durability.data_dir = dir;
  opt.durability.level = storage::DurabilityLevel::kNone;  // tmpfs-friendly
  opt.durability.checkpoint_every = checkpoint_every;
  return opt;
}

// Answers for every subject over a probe pool, for restart comparisons.
std::map<std::string, std::vector<uint64_t>> ProbeAll(Server* server) {
  const char* kProbes[] = {"//patient", "//patient/name", "//bill",
                           "//treatment", "//staff"};
  std::map<std::string, std::vector<uint64_t>> out;
  for (const std::string& subject : server->SubjectNames()) {
    std::vector<uint64_t>& row = out[subject];
    for (const char* q : kProbes) {
      ServeResponse resp = server->Query(subject, q);
      EXPECT_TRUE(resp.status.ok()) << resp.status;
      row.push_back(resp.granted ? 1 : 0);
      row.push_back(resp.selected);
      row.push_back(resp.accessible);
    }
  }
  return out;
}

TEST(ServeDurabilityTest, RestartRecoversCommittedState) {
  std::string dir = DurableDir("restart");
  std::map<std::string, std::vector<uint64_t>> before;
  {
    auto server = MakeHospitalServer(DurableOptions(dir));
    ASSERT_TRUE(server->Start().ok());
    EXPECT_FALSE(server->recovered());
    ASSERT_NE(server->wal(), nullptr);
    ASSERT_TRUE(
        server->Update("//patient[psn=\"001\"]").status.ok());
    ASSERT_TRUE(server
                    ->Insert("//patients",
                             "<patient><psn>990</psn><name>durable</name>"
                             "</patient>")
                    .status.ok());
    before = ProbeAll(server.get());
    server->Stop();
  }
  {
    // No LoadParsed / AddSubject: everything comes back from the data dir.
    auto server = std::make_unique<Server>(DurableOptions(dir));
    ASSERT_TRUE(server->Start().ok());
    EXPECT_TRUE(server->recovered());
    EXPECT_EQ(server->SubjectNames().size(),
              workload::kHospitalSubjectCount);
    EXPECT_EQ(ProbeAll(server.get()), before);
    // The recovered server keeps serving updates durably.
    ASSERT_TRUE(server->Update("//patient[psn=\"002\"]").status.ok());
    server->Stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(ServeDurabilityTest, CheckpointNowCoversWalTail) {
  std::string dir = DurableDir("checkpoint");
  std::map<std::string, std::vector<uint64_t>> before;
  {
    auto server = MakeHospitalServer(DurableOptions(dir));
    ASSERT_TRUE(server->Start().ok());
    ASSERT_TRUE(server->Update("//patient[psn=\"001\"]").status.ok());
    ASSERT_TRUE(server->CheckpointNow().ok());
    // Post-checkpoint updates land in the WAL tail on top of it.
    ASSERT_TRUE(server->Update("//patient[psn=\"003\"]").status.ok());
    before = ProbeAll(server.get());
    server->Stop();
  }
  auto newest = storage::ReadNewestCheckpoint(dir);
  ASSERT_TRUE(newest.ok()) << newest.status();
  {
    auto server = std::make_unique<Server>(DurableOptions(dir));
    ASSERT_TRUE(server->Start().ok());
    EXPECT_TRUE(server->recovered());
    EXPECT_EQ(ProbeAll(server.get()), before);
    server->Stop();
  }
  std::filesystem::remove_all(dir);
}

// CheckpointNow racing live writes (and the background checkpointer): the
// job capture runs on the writer thread via a queue barrier and checkpoint
// writes are mutex-serialized, so concurrent manual checkpoints must never
// corrupt the directory or lose committed updates.
TEST(ServeDurabilityTest, CheckpointNowDuringConcurrentWrites) {
  std::string dir = DurableDir("ckpt_concurrent");
  std::map<std::string, std::vector<uint64_t>> before;
  {
    ServerOptions opt = DurableOptions(dir, /*checkpoint_every=*/3);
    opt.durability.segment_bytes = 4096;
    auto server = MakeHospitalServer(opt);
    ASSERT_TRUE(server->Start().ok());
    std::thread writer([&server] {
      for (int i = 0; i < 20; ++i) {
        char psn[16];
        std::snprintf(psn, sizeof(psn), "9%02d", i);
        ServeResponse r = server->Insert(
            "//patients", std::string("<patient><psn>") + psn +
                              "</psn><name>conc</name></patient>");
        ASSERT_TRUE(r.status.ok()) << r.status;
      }
    });
    for (int i = 0; i < 5; ++i) {
      Status s = server->CheckpointNow();
      ASSERT_TRUE(s.ok()) << s;
    }
    writer.join();
    before = ProbeAll(server.get());
    server->Stop();
  }
  {
    auto server = std::make_unique<Server>(DurableOptions(dir));
    ASSERT_TRUE(server->Start().ok());
    EXPECT_TRUE(server->recovered());
    EXPECT_EQ(ProbeAll(server.get()), before);
    server->Stop();
  }
  std::filesystem::remove_all(dir);
}

// Once the WAL crashes, in-memory state holds commits clients were told
// are NOT durable — a manual checkpoint must refuse to persist it, same as
// the background scheduling gate.
TEST(ServeDurabilityTest, CheckpointNowRefusesAfterWalCrash) {
  std::string dir = DurableDir("ckpt_crash");
  ServerOptions opt = DurableOptions(dir);
  opt.durability.crash_after_records = 1;  // genesis only; batch 1 "kills" it
  auto server = MakeHospitalServer(opt);
  ASSERT_TRUE(server->Start().ok());
  ASSERT_TRUE(server->Update("//patient[psn=\"001\"]").status.ok());
  ASSERT_NE(server->wal(), nullptr);
  ASSERT_TRUE(server->wal()->crashed());
  EXPECT_FALSE(server->CheckpointNow().ok());
  server->Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServeDurabilityTest, BackgroundCheckpointerTruncatesSegments) {
  std::string dir = DurableDir("bg_checkpoint");
  {
    ServerOptions opt = DurableOptions(dir, /*checkpoint_every=*/2);
    opt.durability.segment_bytes = 4096;  // several rolls over the run
    auto server = MakeHospitalServer(opt);
    ASSERT_TRUE(server->Start().ok());
    for (int i = 1; i <= 10; ++i) {
      char psn[16];
      std::snprintf(psn, sizeof(psn), "%03d", i);
      ASSERT_TRUE(
          server->Update(std::string("//patient[psn=\"") + psn + "\"]")
              .status.ok());
    }
    server->Stop();  // joins the checkpointer
  }
  // At least one background checkpoint must have been written.
  auto newest = storage::ReadNewestCheckpoint(dir);
  ASSERT_TRUE(newest.ok()) << newest.status();
  EXPECT_GT(newest->epoch, 1u);
  // And the directory still recovers to the full committed state.
  auto server = std::make_unique<Server>(DurableOptions(dir));
  ASSERT_TRUE(server->Start().ok());
  EXPECT_TRUE(server->recovered());
  ServeResponse resp = server->Query(
      workload::kHospitalSubjects[0].subject, "//patient");
  EXPECT_TRUE(resp.status.ok());
  server->Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServeDurabilityTest, NoDataDirMeansNoWal) {
  auto server = MakeHospitalServer(SmallOptions());
  ASSERT_TRUE(server->Start().ok());
  EXPECT_EQ(server->wal(), nullptr);
  EXPECT_FALSE(server->recovered());
  server->Stop();
}

}  // namespace
}  // namespace xmlac::serve
