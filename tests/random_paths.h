#ifndef XMLAC_TESTS_RANDOM_PATHS_H_
#define XMLAC_TESTS_RANDOM_PATHS_H_

// Random XPath generator for property tests: builds expressions of the
// paper's fragment over a document's actual vocabulary so they are
// satisfiable often enough to be interesting.

#include <string>
#include <vector>

#include "common/random.h"
#include "xml/document.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xmlac::testutil {

class RandomPathGenerator {
 public:
  RandomPathGenerator(const xml::Document& doc, uint64_t seed)
      : rng_(seed) {
    std::set<std::string> labels;
    std::set<std::string> text_values;
    for (xml::NodeId id : doc.AllElements()) {
      labels.insert(doc.node(id).label);
      std::string text = doc.DirectText(id);
      if (!text.empty() && text.size() < 24 &&
          text.find('"') == std::string::npos && text_values.size() < 64) {
        text_values.insert(text);
      }
    }
    labels_.assign(labels.begin(), labels.end());
    values_.assign(text_values.begin(), text_values.end());
  }

  // A random absolute path: 1-4 steps, each child/descendant, ~15%
  // wildcards, ~35% of paths carry one predicate (existence, nested, or
  // comparison against a sampled document value).
  xpath::Path Next() {
    std::string expr;
    int steps = 1 + static_cast<int>(rng_.Uniform(4));
    for (int i = 0; i < steps; ++i) {
      expr += rng_.OneIn(2) ? "//" : "/";
      expr += NameTest();
    }
    if (rng_.NextDouble() < 0.35) expr += Predicate();
    auto parsed = xpath::ParsePath(expr);
    // The generator only composes valid syntax; a parse failure here is a
    // bug worth failing loudly on.
    if (!parsed.ok()) {
      return Next();
    }
    return *parsed;
  }

 private:
  std::string NameTest() {
    if (rng_.NextDouble() < 0.15) return "*";
    return labels_[rng_.Uniform(labels_.size())];
  }

  std::string Predicate() {
    switch (rng_.Uniform(4)) {
      case 0:
        return "[" + NameTest() + "]";
      case 1:
        return "[.//" + NameTest() + "]";
      case 2:
        return "[" + NameTest() + "/" + NameTest() + "]";
      default: {
        if (values_.empty()) return "[" + NameTest() + "]";
        const std::string& v = values_[rng_.Uniform(values_.size())];
        const char* ops[] = {"=", "!=", "<", ">"};
        return "[" + NameTest() + ops[rng_.Uniform(4)] + "\"" + v + "\"]";
      }
    }
  }

  Random rng_;
  std::vector<std::string> labels_;
  std::vector<std::string> values_;
};

}  // namespace xmlac::testutil

#endif  // XMLAC_TESTS_RANDOM_PATHS_H_
