// Differential test: the query executor (hash joins, pushed filters, index
// fast paths) against a brute-force reference evaluator (full cartesian
// product, direct expression evaluation) on random tables and queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "reldb/executor.h"

namespace xmlac::reldb {
namespace {

// --- Reference evaluation ---------------------------------------------------

struct RefBinding {
  const Table* table;
  RowIdx row;
};

Value RefEvalValue(const Expr& e,
                   const std::map<std::string, RefBinding>& env) {
  if (e.kind == ExprKind::kLiteral) return e.literal;
  // ColumnRef: alias must be present in this reference dialect.
  auto it = env.find(e.column.alias);
  EXPECT_NE(it, env.end()) << e.column.alias;
  auto col = it->second.table->schema().ColumnIndex(e.column.column);
  EXPECT_TRUE(col.has_value());
  return it->second.table->GetValue(it->second.row, *col);
}

bool RefEvalBool(const Expr& e, const std::map<std::string, RefBinding>& env) {
  switch (e.kind) {
    case ExprKind::kAnd:
      return RefEvalBool(*e.children[0], env) &&
             RefEvalBool(*e.children[1], env);
    case ExprKind::kOr:
      return RefEvalBool(*e.children[0], env) ||
             RefEvalBool(*e.children[1], env);
    case ExprKind::kNot:
      return !RefEvalBool(*e.children[0], env);
    case ExprKind::kIsNull:
      return RefEvalValue(*e.children[0], env).is_null();
    case ExprKind::kComparison: {
      Value l = RefEvalValue(*e.children[0], env);
      Value r = RefEvalValue(*e.children[1], env);
      int cmp;
      if (!l.SqlCompare(r, &cmp)) return false;
      switch (e.op) {
        case CompareOp::kEq:
          return cmp == 0;
        case CompareOp::kNe:
          return cmp != 0;
        case CompareOp::kLt:
          return cmp < 0;
        case CompareOp::kLe:
          return cmp <= 0;
        case CompareOp::kGt:
          return cmp > 0;
        case CompareOp::kGe:
          return cmp >= 0;
      }
      return false;
    }
    default:
      ADD_FAILURE() << "unexpected expr kind";
      return false;
  }
}

// Full cartesian product evaluation of a single SELECT.
std::vector<Row> RefSelect(const SelectQuery& q, Catalog* catalog) {
  std::vector<const Table*> tables;
  std::vector<std::string> aliases;
  for (const TableRef& tr : q.from) {
    tables.push_back(catalog->GetTable(tr.table));
    aliases.push_back(tr.effective_alias());
  }
  std::vector<Row> out;
  std::vector<RowIdx> idx(tables.size(), 0);
  // Odometer over alive rows.
  std::function<void(size_t, std::map<std::string, RefBinding>&)> rec =
      [&](size_t slot, std::map<std::string, RefBinding>& env) {
        if (slot == tables.size()) {
          if (q.where != nullptr && !RefEvalBool(*q.where, env)) return;
          Row row;
          for (const ColumnRef& ref : q.select) {
            const RefBinding& b = env.at(ref.alias);
            auto col = b.table->schema().ColumnIndex(ref.column);
            row.push_back(b.table->GetValue(b.row, *col));
          }
          out.push_back(std::move(row));
          return;
        }
        for (RowIdx i = 0; i < tables[slot]->Capacity(); ++i) {
          if (!tables[slot]->IsAlive(i)) continue;
          env[aliases[slot]] = RefBinding{tables[slot], i};
          rec(slot + 1, env);
        }
        env.erase(aliases[slot]);
      };
  std::map<std::string, RefBinding> env;
  rec(0, env);
  return out;
}

// --- Random instance generation ---------------------------------------------

std::string SortedRows(std::vector<Row> rows) {
  std::vector<std::string> lines;
  for (const Row& r : rows) {
    std::string line;
    for (const Value& v : r) {
      line += v.ToString();
      line += '|';
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, MatchesBruteForceReference) {
  Random rng(GetParam() * 7 + 13);
  for (auto kind : {StorageKind::kRowStore, StorageKind::kColumnStore}) {
    Catalog catalog(kind);
    // Three small tables with overlapping value domains so joins hit.
    for (const char* name : {"t1", "t2", "t3"}) {
      auto t = catalog.CreateTable(TableSchema(
          name, {{"a", ValueType::kInt64},
                 {"b", ValueType::kInt64},
                 {"s", ValueType::kString}}));
      ASSERT_TRUE(t.ok());
      size_t rows = 3 + rng.Uniform(12);
      for (size_t i = 0; i < rows; ++i) {
        Row row = {Value::Int(static_cast<int64_t>(rng.Uniform(6))),
                   rng.OneIn(8) ? Value::Null()
                                : Value::Int(static_cast<int64_t>(
                                      rng.Uniform(6))),
                   Value::Str(std::string(1, static_cast<char>(
                                                 'a' + rng.Uniform(4))))};
        ASSERT_TRUE((*t)->Insert(std::move(row)).ok());
      }
      if (rng.OneIn(2)) {
        ASSERT_TRUE((*t)->CreateIndex("a").ok());
      }
    }
    Executor exec(&catalog);

    auto random_operand = [&](const std::vector<std::string>& aliases) {
      if (rng.OneIn(3)) {
        return rng.OneIn(4)
                   ? Expr::Literal(Value::Str(std::string(
                         1, static_cast<char>('a' + rng.Uniform(4)))))
                   : Expr::Literal(
                         Value::Int(static_cast<int64_t>(rng.Uniform(6))));
      }
      const char* cols[] = {"a", "b", "s"};
      return Expr::Column(aliases[rng.Uniform(aliases.size())],
                          cols[rng.Uniform(3)]);
    };
    auto random_where = [&](const std::vector<std::string>& aliases) {
      ExprPtr e;
      int conjuncts = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < conjuncts; ++i) {
        ExprPtr c;
        if (rng.OneIn(5)) {
          c = Expr::IsNull(random_operand(aliases));
          if (rng.OneIn(2)) c = Expr::Not(std::move(c));
        } else {
          auto op = static_cast<CompareOp>(rng.Uniform(6));
          c = Expr::Compare(op, random_operand(aliases),
                            random_operand(aliases));
        }
        e = e == nullptr ? std::move(c)
                         : (rng.OneIn(4) ? Expr::Or(std::move(e), std::move(c))
                                         : Expr::And(std::move(e),
                                                     std::move(c)));
      }
      return e;
    };

    for (int round = 0; round < 25; ++round) {
      // Failure reports lead with the seed, like the testing/ harness: the
      // whole round is deterministic in it, so "seed N round R" is a repro.
      SCOPED_TRACE("seed " + std::to_string(GetParam()) + " round " +
                   std::to_string(round) + " storage " +
                   (kind == StorageKind::kRowStore ? "row" : "column"));
      SelectQuery q;
      size_t slots = 1 + rng.Uniform(3);
      const char* names[] = {"t1", "t2", "t3"};
      std::vector<std::string> aliases;
      for (size_t s = 0; s < slots; ++s) {
        TableRef tr;
        tr.table = names[rng.Uniform(3)];
        tr.alias = "x" + std::to_string(s);
        aliases.push_back(tr.alias);
        q.from.push_back(tr);
      }
      size_t ncols = 1 + rng.Uniform(2);
      const char* cols[] = {"a", "b", "s"};
      for (size_t c = 0; c < ncols; ++c) {
        q.select.push_back(
            {aliases[rng.Uniform(aliases.size())], cols[rng.Uniform(3)]});
      }
      if (!rng.OneIn(5)) q.where = random_where(aliases);

      std::vector<Row> expected = RefSelect(q, &catalog);
      CompoundSelect cq;
      cq.first = q.Clone();
      auto got = exec.ExecuteSelect(cq);
      ASSERT_TRUE(got.ok()) << got.status() << "\n" << q.ToSql();
      EXPECT_EQ(SortedRows(got->rows), SortedRows(expected)) << q.ToSql();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace xmlac::reldb
