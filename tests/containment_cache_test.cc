#include "xpath/containment_cache.h"

#include "common/io.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "policy/trigger.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xpath/containment.h"
#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

Path P(std::string_view text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/xmlac_cc_test_" + name;
}

TEST(ContainmentCacheTest, AgreesWithDirectChecks) {
  ContainmentCache cache;
  struct Case {
    const char* p;
    const char* q;
  };
  const Case kCases[] = {
      {"//patient[treatment]", "//patient"},
      {"//patient", "//patient[treatment]"},
      {"/a/b/c", "//c"},
      {"//a", "//b"},
      {"//a[b and c]", "//a[c]"},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(cache.Contains(P(c.p), P(c.q)), Contains(P(c.p), P(c.q)))
        << c.p << " vs " << c.q;
  }
}

TEST(ContainmentCacheTest, HitsAndMisses) {
  ContainmentCache cache;
  Path p = P("//patient[treatment]");
  Path q = P("//patient");
  EXPECT_TRUE(cache.Contains(p, q));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_TRUE(cache.Contains(p, q));
  EXPECT_EQ(cache.hits(), 1u);
  // Order matters: (q, p) is a distinct entry.
  EXPECT_FALSE(cache.Contains(q, p));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ContainmentCacheTest, SaveLoadRoundTrip) {
  std::string file = TempPath("roundtrip");
  ContainmentCache cache;
  EXPECT_TRUE(cache.Contains(P("//a[b]"), P("//a")));
  EXPECT_FALSE(cache.Contains(P("//a"), P("//a[b]")));
  ASSERT_TRUE(cache.SaveToFile(file).ok());

  ContainmentCache loaded;
  ASSERT_TRUE(loaded.LoadFromFile(file).ok());
  EXPECT_EQ(loaded.size(), 2u);
  // Loaded entries are hits.
  EXPECT_TRUE(loaded.Contains(P("//a[b]"), P("//a")));
  EXPECT_EQ(loaded.hits(), 1u);
  EXPECT_EQ(loaded.misses(), 0u);
  std::remove(file.c_str());
}

TEST(ContainmentCacheTest, LoadIgnoresCorruptLines) {
  std::string file = TempPath("corrupt");
  ASSERT_TRUE(WriteFile(file,
                        "//a\t//b\t1\n"
                        "garbage line\n"
                        "//a\t//b\n"
                        "//a\t//b\t7\n"
                        "not[an xpath\t//b\t0\n"
                        "//c\t//d\t0\n")
                  .ok());
  ContainmentCache cache;
  ASSERT_TRUE(cache.LoadFromFile(file).ok());
  EXPECT_EQ(cache.size(), 2u);  // only the two well-formed entries
  std::remove(file.c_str());
}

TEST(ContainmentCacheTest, LoadMissingFileFails) {
  ContainmentCache cache;
  EXPECT_EQ(cache.LoadFromFile("/no/such/cache.tsv").code(),
            StatusCode::kNotFound);
}

TEST(ContainmentCacheTest, ConcurrentContainsIsSafeAndConsistent) {
  // Many threads hammer one cache with an overlapping working set.  Results
  // must always agree with the direct check, and the metric invariant
  // checks == hits + misses must survive the races (duplicate computes on
  // a miss race are allowed — each counts as a miss — so misses may exceed
  // the number of distinct keys, but the books must still balance).
  const char* kPaths[] = {
      "//patient",      "//patient[treatment]", "//patient/name",
      "//regular",      "//regular[med]",       "/a/b/c",
      "//c",            "//a[b and c]",         "//a[c]",
      "//bill",
  };
  constexpr size_t kPathCount = sizeof(kPaths) / sizeof(kPaths[0]);
  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 400;

  ContainmentCache cache;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kItersPerThread; ++i) {
        const char* p = kPaths[(t + i) % kPathCount];
        const char* q = kPaths[(t * 3 + i * 7) % kPathCount];
        ASSERT_EQ(cache.Contains(P(p), P(q)), Contains(P(p), P(q)))
            << p << " vs " << q;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kItersPerThread);
  EXPECT_GT(cache.hits(), 0u);
  // Every distinct (p, q) pair was computed at least once.
  EXPECT_GE(cache.misses(), cache.size());
  EXPECT_LE(cache.size(), kPathCount * kPathCount);
}

TEST(ContainmentCacheTest, TriggerIndexUsesCache) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  ASSERT_TRUE(dtd.ok());
  xml::SchemaGraph schema(*dtd);
  auto policy = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(policy.ok());

  ContainmentCache cache;
  policy::TriggerOptions opt;
  opt.containment_cache = &cache;
  policy::TriggerIndex cached_index(*policy, &schema, opt);
  policy::TriggerIndex plain_index(*policy, &schema);

  Path u = P("//patient/treatment");
  auto a = cached_index.Trigger(u);
  EXPECT_GT(cache.misses(), 0u);
  uint64_t misses_after_first = cache.misses();
  auto b = cached_index.Trigger(u);
  // The second identical update is answered entirely from the cache.
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);
  // And the results never differ from the uncached index.
  EXPECT_EQ(a, plain_index.Trigger(u));
  EXPECT_EQ(b, a);
}

}  // namespace
}  // namespace xmlac::xpath
