#include "engine/accessibility_map.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"
#include "workload/coverage.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

TEST(CompressedAccessibilityMapTest, AgreesWithSetOnHospitalPolicy) {
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(doc.ok() && p.ok());
  policy::NodeSet accessible = policy::AccessibleNodes(*p, *doc);
  auto map = CompressedAccessibilityMap::Build(*doc, accessible);
  for (xml::NodeId n : doc->AllElements()) {
    EXPECT_EQ(map.IsAccessible(*doc, n), accessible.count(n) > 0)
        << "node " << n << " (" << doc->node(n).label << ")";
  }
}

TEST(CompressedAccessibilityMapTest, SubtreeGrantsCompressWell) {
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(doc.ok());
  // Grant whole subtrees: everything under dept.
  auto p = policy::ParsePolicy(
      "default deny\nconflict deny\nallow //dept\nallow //dept//*\n");
  ASSERT_TRUE(p.ok());
  policy::NodeSet accessible = policy::AccessibleNodes(*p, *doc);
  auto map = CompressedAccessibilityMap::Build(*doc, accessible);
  // Only the dept boundary flips: one marker per dept element.
  auto depts = xpath::Evaluate(*xpath::ParsePath("//dept"), *doc);
  EXPECT_EQ(map.marker_count(), depts.size());
  EXPECT_LT(map.marker_count(), accessible.size());
  for (xml::NodeId n : doc->AllElements()) {
    EXPECT_EQ(map.IsAccessible(*doc, n), accessible.count(n) > 0);
  }
}

TEST(CompressedAccessibilityMapTest, AlternatingWorstCase) {
  // a -> b -> a -> b ... alternating accessibility: every node is a marker.
  xml::Document doc;
  xml::NodeId cur = doc.CreateRoot("n0");
  policy::NodeSet accessible = {cur};  // root accessible (flip #1)
  for (int i = 1; i < 10; ++i) {
    cur = doc.CreateElement(cur, "n" + std::to_string(i));
    if (i % 2 == 0) accessible.insert(cur);
  }
  auto map = CompressedAccessibilityMap::Build(doc, accessible);
  EXPECT_EQ(map.marker_count(), 10u);
  for (xml::NodeId n : doc.AllElements()) {
    EXPECT_EQ(map.IsAccessible(doc, n), accessible.count(n) > 0);
  }
}

TEST(CompressedAccessibilityMapTest, EmptyAndFullSets) {
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(doc.ok());
  auto empty_map = CompressedAccessibilityMap::Build(*doc, {});
  EXPECT_EQ(empty_map.marker_count(), 0u);
  EXPECT_FALSE(empty_map.IsAccessible(*doc, doc->root()));

  policy::NodeSet all;
  for (xml::NodeId n : doc->AllElements()) all.insert(n);
  auto full_map = CompressedAccessibilityMap::Build(*doc, all);
  EXPECT_EQ(full_map.marker_count(), 1u);  // single flip at the root
  for (xml::NodeId n : doc->AllElements()) {
    EXPECT_TRUE(full_map.IsAccessible(*doc, n));
  }
}

TEST(CompressedAccessibilityMapTest, DeadNodesInaccessible) {
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(doc.ok());
  policy::NodeSet all;
  for (xml::NodeId n : doc->AllElements()) all.insert(n);
  auto map = CompressedAccessibilityMap::Build(*doc, all);
  auto patients = xpath::Evaluate(*xpath::ParsePath("//patient"), *doc);
  ASSERT_FALSE(patients.empty());
  doc->DeleteSubtree(patients[0]);
  EXPECT_FALSE(map.IsAccessible(*doc, patients[0]));
}

TEST(CompressedAccessibilityMapTest, RandomizedAgreement) {
  workload::XmarkGenerator gen;
  workload::XmarkOptions opt;
  opt.factor = 0.01;
  xml::Document doc = gen.Generate(opt);
  for (uint64_t seed : {1u, 2u, 3u}) {
    workload::CoverageOptions copt;
    copt.target = 0.45;
    copt.seed = seed;
    auto p = workload::GenerateCoveragePolicy(doc, copt);
    ASSERT_TRUE(p.ok());
    policy::NodeSet accessible = policy::AccessibleNodes(*p, doc);
    auto map = CompressedAccessibilityMap::Build(doc, accessible);
    for (xml::NodeId n : doc.AllElements()) {
      ASSERT_EQ(map.IsAccessible(doc, n), accessible.count(n) > 0)
          << "seed " << seed << " node " << n;
    }
  }
}

}  // namespace
}  // namespace xmlac::engine
