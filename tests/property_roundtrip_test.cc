// Round-trip / fuzz properties:
//  * serialize(parse(serialize(doc))) is a fixpoint for random documents;
//  * shred -> SQL script -> reload reproduces the exact tuple set;
//  * random build/delete sequences keep Document invariants (alive counts,
//    parent/child symmetry, no dangling children).

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "reldb/executor.h"
#include "shred/shredder.h"
#include "testing/generators.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"

namespace xmlac {
namespace {

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripPropertyTest, SerializeParseFixpoint) {
  workload::XmarkGenerator gen;
  workload::XmarkOptions opt;
  opt.factor = 0.004;
  opt.seed = GetParam();
  xml::Document doc = gen.Generate(opt);
  std::string once = xml::Serialize(doc);
  auto reparsed = xml::ParseDocument(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(xml::Serialize(*reparsed), once);
  // Indented form parses back to the same canonical form.
  xml::SerializeOptions pretty;
  pretty.indent = true;
  auto reparsed2 = xml::ParseDocument(xml::Serialize(doc, pretty));
  ASSERT_TRUE(reparsed2.ok()) << reparsed2.status();
  EXPECT_EQ(xml::Serialize(*reparsed2), once);
}

TEST_P(RoundTripPropertyTest, ShredSqlReloadReproducesTuples) {
  workload::XmarkGenerator gen;
  workload::XmarkOptions opt;
  opt.factor = 0.004;
  opt.seed = GetParam() + 100;
  xml::Document doc = gen.Generate(opt);
  auto dtd = workload::XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok());
  shred::ShredMapping mapping(*dtd);

  reldb::Catalog direct(reldb::StorageKind::kRowStore);
  ASSERT_TRUE(mapping.CreateTables(&direct).ok());
  ASSERT_TRUE(shred::ShredToCatalog(doc, mapping, &direct, '-').ok());

  reldb::Catalog via_sql(reldb::StorageKind::kColumnStore);
  reldb::Executor exec(&via_sql);
  ASSERT_TRUE(exec.Run(mapping.ToDdlScript()).ok());
  auto script = shred::ShredToSqlScript(doc, mapping, '-');
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(exec.Run(*script).ok());

  ASSERT_EQ(direct.TotalRows(), via_sql.TotalRows());
  for (const std::string& name : direct.TableNames()) {
    const reldb::Table* a = direct.GetTable(name);
    const reldb::Table* b = via_sql.GetTable(name);
    ASSERT_NE(b, nullptr) << name;
    ASSERT_EQ(a->AliveCount(), b->AliveCount()) << name;
    std::set<std::string> rows_a, rows_b;
    for (reldb::RowIdx i = 0; i < a->Capacity(); ++i) {
      if (!a->IsAlive(i)) continue;
      std::string key;
      for (const auto& v : a->GetRow(i)) key += v.ToString() + "|";
      rows_a.insert(std::move(key));
    }
    for (reldb::RowIdx i = 0; i < b->Capacity(); ++i) {
      if (!b->IsAlive(i)) continue;
      std::string key;
      for (const auto& v : b->GetRow(i)) key += v.ToString() + "|";
      rows_b.insert(std::move(key));
    }
    EXPECT_EQ(rows_a, rows_b) << name;
  }
}

TEST_P(RoundTripPropertyTest, DocumentInvariantsUnderRandomMutation) {
  Random rng(GetParam() * 37 + 7);
  workload::XmarkGenerator gen;
  workload::XmarkOptions opt;
  opt.factor = 0.003;
  opt.seed = GetParam();
  xml::Document doc = gen.Generate(opt);
  testing::RandomPathGenerator paths(doc, GetParam() + 55);

  for (int round = 0; round < 10; ++round) {
    // Random delete of whatever a random path selects.
    auto victims = xpath::Evaluate(paths.Next(), doc);
    size_t take = victims.empty() ? 0 : rng.Uniform(victims.size() + 1);
    for (size_t i = 0; i < take; ++i) doc.DeleteSubtree(victims[i]);
    if (doc.alive_count() == 0) break;

    // Invariants.
    size_t counted_alive = 0;
    for (xml::NodeId id = 0; id < doc.size(); ++id) {
      const xml::Node& n = doc.node(id);
      if (!n.alive) continue;
      ++counted_alive;
      // Parent is alive and lists us exactly once.
      if (n.parent != xml::kInvalidNode) {
        ASSERT_TRUE(doc.IsAlive(n.parent)) << id;
        const auto& sib = doc.node(n.parent).children;
        ASSERT_EQ(std::count(sib.begin(), sib.end(), id), 1) << id;
      }
      // Alive children point back.
      for (xml::NodeId c : n.children) {
        if (doc.IsAlive(c)) {
          ASSERT_EQ(doc.node(c).parent, id);
        }
      }
    }
    ASSERT_EQ(counted_alive, doc.alive_count());
    // Serialization of a mutated document still parses.
    auto reparsed = xml::ParseDocument(xml::Serialize(doc));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    ASSERT_EQ(reparsed->alive_count(), doc.alive_count());
  }
}

// Generated instances from the shared family round-trip too: both the
// document (through the serializer) and the whole instance (through the
// repro file format the shrinker dumps).
TEST_P(RoundTripPropertyTest, GeneratedInstanceSerializeParseFixpoint) {
  testing::InstanceOptions opt;
  opt.seed = GetParam() * 191 + 2;
  opt.max_updates = 3;
  testing::Instance instance = testing::GenerateInstance(opt);
  std::string once = xml::Serialize(instance.doc);
  auto reparsed = xml::ParseDocument(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(xml::Serialize(*reparsed), once);

  std::string dir = ::testing::TempDir() + "xmlac_roundtrip_seed" +
                    std::to_string(opt.seed);
  ASSERT_TRUE(testing::WriteRepro(instance, dir).ok());
  auto loaded = testing::LoadRepro(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(xml::Serialize(loaded->doc), once);
  EXPECT_EQ(loaded->policy.ToString(), instance.policy.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace xmlac
