#include "xml/document.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace xmlac::xml {
namespace {

Document MakeHospitalFragment() {
  // hospital/dept/patients/patient{psn,name}
  Document doc;
  NodeId hospital = doc.CreateRoot("hospital");
  NodeId dept = doc.CreateElement(hospital, "dept");
  NodeId patients = doc.CreateElement(dept, "patients");
  NodeId patient = doc.CreateElement(patients, "patient");
  NodeId psn = doc.CreateElement(patient, "psn");
  doc.CreateText(psn, "033");
  NodeId name = doc.CreateElement(patient, "name");
  doc.CreateText(name, "john doe");
  return doc;
}

TEST(DocumentTest, BuildAndNavigate) {
  Document doc = MakeHospitalFragment();
  EXPECT_EQ(doc.node(doc.root()).label, "hospital");
  EXPECT_EQ(doc.alive_count(), 8u);
  ASSERT_EQ(doc.node(doc.root()).children.size(), 1u);
  NodeId dept = doc.node(doc.root()).children[0];
  EXPECT_EQ(doc.node(dept).label, "dept");
  EXPECT_EQ(doc.node(dept).parent, doc.root());
}

TEST(DocumentTest, DirectText) {
  Document doc = MakeHospitalFragment();
  auto elements = doc.AllElements();
  NodeId psn = kInvalidNode;
  for (NodeId id : elements) {
    if (doc.node(id).label == "psn") psn = id;
  }
  ASSERT_NE(psn, kInvalidNode);
  EXPECT_EQ(doc.DirectText(psn), "033");
  EXPECT_EQ(doc.DirectText(doc.root()), "");
}

TEST(DocumentTest, Attributes) {
  Document doc;
  NodeId root = doc.CreateRoot("r");
  EXPECT_FALSE(doc.GetAttribute(root, "sign").has_value());
  doc.SetAttribute(root, "sign", "+");
  ASSERT_TRUE(doc.GetAttribute(root, "sign").has_value());
  EXPECT_EQ(*doc.GetAttribute(root, "sign"), "+");
  doc.SetAttribute(root, "sign", "-");
  EXPECT_EQ(*doc.GetAttribute(root, "sign"), "-");
  EXPECT_TRUE(doc.RemoveAttribute(root, "sign"));
  EXPECT_FALSE(doc.RemoveAttribute(root, "sign"));
  EXPECT_FALSE(doc.GetAttribute(root, "sign").has_value());
}

TEST(DocumentTest, DeleteSubtreeKillsDescendantsAndUnlinks) {
  Document doc = MakeHospitalFragment();
  auto elements = doc.AllElements();
  NodeId patient = kInvalidNode;
  for (NodeId id : elements) {
    if (doc.node(id).label == "patient") patient = id;
  }
  ASSERT_NE(patient, kInvalidNode);
  NodeId patients = doc.node(patient).parent;
  size_t before = doc.alive_count();
  doc.DeleteSubtree(patient);
  EXPECT_FALSE(doc.IsAlive(patient));
  EXPECT_EQ(doc.alive_count(), before - 5);  // patient, psn, text, name, text
  EXPECT_TRUE(doc.node(patients).children.empty());
  // NodeIds are never reused.
  NodeId fresh = doc.CreateElement(patients, "patient");
  EXPECT_GT(fresh, patient);
}

TEST(DocumentTest, DeleteRootEmptiesDocument) {
  Document doc = MakeHospitalFragment();
  doc.DeleteSubtree(doc.root());
  EXPECT_EQ(doc.alive_count(), 0u);
  EXPECT_FALSE(doc.IsAlive(doc.root()));
}

TEST(DocumentTest, VisitIsPreOrderDocumentOrder) {
  Document doc = MakeHospitalFragment();
  std::vector<std::string> labels;
  doc.Visit(doc.root(), [&](NodeId id) {
    if (doc.node(id).kind == NodeKind::kElement) {
      labels.push_back(doc.node(id).label);
    }
  });
  std::vector<std::string> expected = {"hospital", "dept", "patients",
                                       "patient", "psn", "name"};
  EXPECT_EQ(labels, expected);
}

TEST(DocumentTest, VisitSkipsDeleted) {
  Document doc = MakeHospitalFragment();
  for (NodeId id : doc.AllElements()) {
    if (doc.node(id).label == "psn") doc.DeleteSubtree(id);
  }
  std::vector<std::string> labels;
  doc.Visit(doc.root(), [&](NodeId id) { labels.push_back(doc.node(id).label); });
  for (const auto& l : labels) EXPECT_NE(l, "psn");
}

TEST(DocumentTest, PathOfAndDepth) {
  Document doc = MakeHospitalFragment();
  NodeId psn = kInvalidNode;
  for (NodeId id : doc.AllElements()) {
    if (doc.node(id).label == "psn") psn = id;
  }
  EXPECT_EQ(doc.PathOf(psn), "/hospital/dept/patients/patient/psn");
  EXPECT_EQ(doc.DepthOf(psn), 4);
  EXPECT_EQ(doc.DepthOf(doc.root()), 0);
  EXPECT_EQ(doc.Height(), 4);
}

// Binary roundtrip (the durable formats — WAL install records and
// checkpoints — lean on these invariants; see docs/durability.md).
TEST(DocumentTest, BinaryRoundTripPreservesArena) {
  Document doc = MakeHospitalFragment();
  // Create a tombstone so the roundtrip exercises dead slots too.
  NodeId victim = kInvalidNode;
  for (NodeId id : doc.AllElements()) {
    if (doc.node(id).label == "name") victim = id;
  }
  ASSERT_NE(victim, kInvalidNode);
  doc.DeleteSubtree(victim);
  uint64_t version = doc.version();

  std::string blob;
  doc.AppendBinary(&blob);
  auto restored = Document::FromBinary(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();

  // NodeIds, arena order, tombstones, and the version all survive.
  EXPECT_EQ(restored->version(), version);
  EXPECT_EQ(restored->alive_count(), doc.alive_count());
  EXPECT_EQ(restored->root(), doc.root());
  std::vector<std::pair<NodeId, std::string>> orig, back;
  doc.Visit(doc.root(), [&](NodeId id) {
    orig.emplace_back(id, doc.node(id).label);
  });
  restored->Visit(restored->root(), [&](NodeId id) {
    back.emplace_back(id, restored->node(id).label);
  });
  EXPECT_EQ(orig, back);

  // Replaying the same logical mutation against the restored arena
  // allocates the same id the original run allocates — the property WAL
  // decision-replay depends on.
  NodeId parent = doc.root();
  NodeId a = doc.CreateElement(parent, "ward");
  NodeId b = restored->CreateElement(restored->root(), "ward");
  EXPECT_EQ(a, b);
  EXPECT_EQ(doc.version(), restored->version());
}

TEST(DocumentTest, BinaryRestoreStartsEmptyJournalWindow) {
  Document doc = MakeHospitalFragment();
  std::string blob;
  doc.AppendBinary(&blob);
  auto restored = Document::FromBinary(blob);
  ASSERT_TRUE(restored.ok());
  // The journal is not dumped: asking for history from version 0 fails
  // (rebuild-from-scratch signal), while "since current version" is fine.
  std::vector<Mutation> mutations;
  if (restored->version() > 0) {
    EXPECT_FALSE(restored->MutationsSince(0, &mutations));
  }
  EXPECT_TRUE(restored->MutationsSince(restored->version(), &mutations));
  EXPECT_TRUE(mutations.empty());
  // New mutations journal normally from here.
  restored->CreateElement(restored->root(), "annex");
  ASSERT_TRUE(restored->MutationsSince(restored->version() - 1, &mutations));
  EXPECT_EQ(mutations.size(), 1u);
}

TEST(DocumentTest, FromBinaryRejectsCorruptBlob) {
  Document doc = MakeHospitalFragment();
  std::string blob;
  doc.AppendBinary(&blob);
  EXPECT_FALSE(Document::FromBinary("").ok());
  EXPECT_FALSE(Document::FromBinary(blob.substr(0, blob.size() / 2)).ok());
}

TEST(DocumentTest, MoveSemantics) {
  Document doc = MakeHospitalFragment();
  size_t n = doc.alive_count();
  Document moved = std::move(doc);
  EXPECT_EQ(moved.alive_count(), n);
  EXPECT_EQ(moved.node(moved.root()).label, "hospital");
}

}  // namespace
}  // namespace xmlac::xml
