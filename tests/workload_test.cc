#include <gtest/gtest.h>

#include <algorithm>

#include "policy/semantics.h"
#include "shred/mapping.h"
#include "shred/xpath_to_sql.h"
#include "workload/coverage.h"
#include "workload/hospital.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/schema_graph.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::workload {
namespace {

TEST(XmarkTest, DtdParsesAndIsNonRecursive) {
  auto dtd = XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->root_name(), "site");
  xml::SchemaGraph g(*dtd);
  EXPECT_FALSE(g.IsRecursive());
}

TEST(XmarkTest, GeneratedDocumentValidAgainstSchema) {
  auto dtd = XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok());
  xml::SchemaGraph g(*dtd);
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.01;
  xml::Document doc = gen.Generate(opt);
  EXPECT_EQ(doc.node(doc.root()).label, "site");
  // Every element's label is in the schema and every child edge is allowed.
  for (xml::NodeId id : doc.AllElements()) {
    const xml::Node& n = doc.node(id);
    ASSERT_TRUE(g.HasLabel(n.label)) << n.label;
    if (n.parent != xml::kInvalidNode) {
      EXPECT_TRUE(g.Children(doc.node(n.parent).label).count(n.label) > 0)
          << doc.node(n.parent).label << " -> " << n.label;
    }
  }
}

TEST(XmarkTest, SizeScalesWithFactor) {
  XmarkGenerator gen;
  XmarkOptions small;
  small.factor = 0.01;
  XmarkOptions large;
  large.factor = 0.1;
  size_t s = gen.Generate(small).AllElements().size();
  size_t l = gen.Generate(large).AllElements().size();
  EXPECT_GT(s, 100u);
  // Roughly 10x (fanouts are random, allow slack).
  EXPECT_GT(l, s * 5);
  EXPECT_LT(l, s * 20);
}

TEST(XmarkTest, DeterministicInSeed) {
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.005;
  xml::Document a = gen.Generate(opt);
  xml::Document b = gen.Generate(opt);
  EXPECT_EQ(xml::Serialize(a), xml::Serialize(b));
  opt.seed = 99;
  xml::Document c = gen.Generate(opt);
  EXPECT_NE(xml::Serialize(a), xml::Serialize(c));
}

TEST(XmarkTest, ShreddableAndTranslatable) {
  auto dtd = XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok());
  shred::ShredMapping mapping(*dtd);
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.005;
  xml::Document doc = gen.Generate(opt);
  // Representative XMark-ish queries translate and agree with the tree.
  for (const char* expr :
       {"//person", "//person/name", "//open_auction[bidder]",
        "//closed_auction/price", "//item/incategory",
        "//person[profile/age]"}) {
    auto path = xpath::ParsePath(expr);
    ASSERT_TRUE(path.ok());
    auto tr = shred::TranslateXPath(*path, mapping);
    ASSERT_TRUE(tr.ok()) << tr.status() << " for " << expr;
  }
}

TEST(HospitalTest, GeneratedDocumentValid) {
  auto dtd = HospitalGenerator::ParseHospitalDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  xml::SchemaGraph g(*dtd);
  HospitalGenerator gen;
  HospitalOptions opt;
  xml::Document doc = gen.Generate(opt);
  for (xml::NodeId id : doc.AllElements()) {
    const xml::Node& n = doc.node(id);
    ASSERT_TRUE(g.HasLabel(n.label)) << n.label;
  }
  auto patients = xpath::Evaluate(*xpath::ParsePath("//patient"), doc);
  EXPECT_EQ(patients.size(), static_cast<size_t>(
                                 opt.departments *
                                 opt.patients_per_department));
}

TEST(HospitalTest, PaperPolicyParsesAgainstGenerator) {
  auto p = policy::ParsePolicy(kHospitalPolicyText);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->size(), 8u);
  HospitalGenerator gen;
  xml::Document doc = gen.Generate(HospitalOptions{});
  // The policy is satisfiable on generated data.
  EXPECT_GT(policy::AccessibleNodes(*p, doc).size(), 0u);
}

TEST(HospitalTest, TreatmentRateRespected) {
  HospitalGenerator gen;
  HospitalOptions opt;
  opt.patients_per_department = 500;
  opt.departments = 1;
  opt.treatment_rate = 0.25;
  xml::Document doc = gen.Generate(opt);
  auto treatments = xpath::Evaluate(*xpath::ParsePath("//treatment"), doc);
  double rate = static_cast<double>(treatments.size()) / 500.0;
  EXPECT_NEAR(rate, 0.25, 0.08);
}

class CoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(CoverageTest, HitsTargetWithinTolerance) {
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.01;
  xml::Document doc = gen.Generate(opt);
  CoverageOptions copt;
  copt.target = GetParam();
  auto p = GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(p.ok()) << p.status();
  double achieved = MeasureCoverage(*p, doc);
  EXPECT_NEAR(achieved, copt.target, 0.08) << "rules: " << p->size();
  EXPECT_EQ(p->default_semantics(), policy::DefaultSemantics::kDeny);
}

INSTANTIATE_TEST_SUITE_P(Targets, CoverageTest,
                         ::testing::Values(0.25, 0.4, 0.55, 0.7),
                         [](const auto& info) {
                           return "t" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(CoverageTest2, DeterministicPerSeed) {
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.005;
  xml::Document doc = gen.Generate(opt);
  CoverageOptions copt;
  copt.target = 0.5;
  auto a = GenerateCoveragePolicy(doc, copt);
  auto b = GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(CoverageTest2, IncludesDenyRulesWhenRequested) {
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.01;
  xml::Document doc = gen.Generate(opt);
  CoverageOptions copt;
  copt.target = 0.5;
  copt.include_denies = true;
  auto p = GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p->NegativeRules().size(), 0u);
  copt.include_denies = false;
  p = GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->NegativeRules().empty());
}

TEST(CoverageTest2, RejectsBadTargets) {
  xml::Document doc;
  doc.CreateRoot("a");
  CoverageOptions copt;
  copt.target = 0.0;
  EXPECT_FALSE(GenerateCoveragePolicy(doc, copt).ok());
  copt.target = 1.5;
  EXPECT_FALSE(GenerateCoveragePolicy(doc, copt).ok());
}

TEST(CoverageTest2, PathStatisticsCounts) {
  HospitalGenerator gen;
  HospitalOptions opt;
  opt.departments = 1;
  opt.patients_per_department = 10;
  opt.staff_per_department = 0;
  xml::Document doc = gen.Generate(opt);
  auto stats = PathStatistics(doc);
  EXPECT_EQ(stats["//patient"], 10u);
  EXPECT_EQ(stats["//patients/patient"], 10u);
  EXPECT_EQ(stats["//hospital"], 1u);
}

TEST(QueryWorkloadTest, GeneratesRequestedCountOfDistinctQueries) {
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.01;
  xml::Document doc = gen.Generate(opt);
  QueryWorkloadOptions qopt;
  qopt.count = 55;
  auto queries = GenerateQueries(doc, qopt);
  EXPECT_EQ(queries.size(), 55u);
  std::set<std::string> distinct;
  for (const auto& q : queries) distinct.insert(xpath::ToString(q));
  EXPECT_EQ(distinct.size(), queries.size());
}

TEST(QueryWorkloadTest, QueriesAreMostlyNonEmpty) {
  XmarkGenerator gen;
  XmarkOptions opt;
  opt.factor = 0.01;
  xml::Document doc = gen.Generate(opt);
  QueryWorkloadOptions qopt;
  qopt.count = 40;
  size_t nonempty = 0;
  for (const auto& q : GenerateQueries(doc, qopt)) {
    if (!xpath::Evaluate(q, doc).empty()) ++nonempty;
  }
  // The vocabulary is sampled from the document, so the vast majority of
  // queries must match something.
  EXPECT_GE(nonempty, 35u);
}

TEST(QueryWorkloadTest, Deterministic) {
  HospitalGenerator gen;
  xml::Document doc = gen.Generate(HospitalOptions{});
  QueryWorkloadOptions qopt;
  auto a = GenerateQueries(doc, qopt);
  auto b = GenerateQueries(doc, qopt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(xpath::StructurallyEqual(a[i], b[i]));
  }
}

}  // namespace
}  // namespace xmlac::workload
