#include "engine/annotator.h"

#include <gtest/gtest.h>

#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

class AnnotatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(dtd.ok() && doc.ok());
    dtd_ = std::make_unique<xml::Dtd>(std::move(*dtd));
    doc_ = std::move(*doc);
    ASSERT_TRUE(backend_.Load(*dtd_, doc_).ok());
  }

  policy::Policy Parse(const char* text) {
    auto p = policy::ParsePolicy(text);
    EXPECT_TRUE(p.ok()) << p.status();
    return std::move(*p);
  }

  std::unique_ptr<xml::Dtd> dtd_;
  xml::Document doc_;
  NativeXmlBackend backend_;
};

TEST_F(AnnotatorTest, StatsReflectWork) {
  policy::Policy p = Parse(testdata::kHospitalPolicy);
  auto stats = AnnotateFull(&backend_, p);
  ASSERT_TRUE(stats.ok());
  // Accessible: 3 names + 1 patient + 1 regular = 5.
  EXPECT_EQ(stats->marked, 5u);
  EXPECT_EQ(stats->reset, backend_.NodeCount());
  EXPECT_EQ(stats->rules_used, p.size());
}

TEST_F(AnnotatorTest, EmptyPolicyMarksNothing) {
  policy::Policy deny_all(policy::DefaultSemantics::kDeny,
                          policy::ConflictResolution::kDenyOverrides);
  auto stats = AnnotateFull(&backend_, deny_all);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->marked, 0u);
  EXPECT_EQ(*backend_.GetSign(0), '-');
}

TEST_F(AnnotatorTest, AllowDefaultEmptyPolicyMarksNothing) {
  policy::Policy allow_all(policy::DefaultSemantics::kAllow,
                           policy::ConflictResolution::kDenyOverrides);
  auto stats = AnnotateFull(&backend_, allow_all);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->marked, 0u);
  EXPECT_EQ(*backend_.GetSign(0), '+');
}

TEST_F(AnnotatorTest, ReannotateWithNoTriggeredRulesIsNoop) {
  policy::Policy p = Parse(testdata::kHospitalPolicy);
  ASSERT_TRUE(AnnotateFull(&backend_, p).ok());
  std::string before = xml::Serialize(backend_.document());
  auto stats = Reannotate(&backend_, p, {}, {});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->marked, 0u);
  EXPECT_EQ(stats->reset, 0u);
  EXPECT_EQ(xml::Serialize(backend_.document()), before);
}

TEST_F(AnnotatorTest, TriggeredScopeIsUnionOfRuleScopes) {
  policy::Policy p = Parse(testdata::kHospitalPolicy);
  // Scope of R1 (//patient) and R6 (//regular): 3 patients + 1 regular.
  auto scope = TriggeredScope(&backend_, p, {0, 5});
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->size(), 4u);
  // Overlapping rules do not double-count: R1 and R3 both select patients.
  scope = TriggeredScope(&backend_, p, {0, 2});
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->size(), 3u);
  // Empty set of rules: empty scope.
  scope = TriggeredScope(&backend_, p, {});
  ASSERT_TRUE(scope.ok());
  EXPECT_TRUE(scope->empty());
}

TEST_F(AnnotatorTest, ReannotateResetsStaleMarks) {
  policy::Policy p = Parse(testdata::kHospitalPolicy);
  ASSERT_TRUE(AnnotateFull(&backend_, p).ok());
  // Simulate drift: the regular node (id from //regular) is marked, then
  // the policy's R6 is "re-run" after we delete the node's parent chain —
  // use the old_scope mechanism directly.
  auto regular = backend_.EvaluateQuery(*xpath::ParsePath("//regular"));
  ASSERT_TRUE(regular.ok());
  ASSERT_EQ(regular->size(), 1u);
  EXPECT_EQ(*backend_.GetSign((*regular)[0]), '+');
  // Delete med so R7-style conditions would change; here simply verify that
  // passing the node in old_scope resets it when no triggered rule re-marks.
  auto stats = Reannotate(&backend_, p, {1 /* R2: names only */}, *regular);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(*backend_.GetSign((*regular)[0]), '-');  // reset, not re-marked
}

TEST(AnnotatorRelationalTest, StatsMatchNativeCounts) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  NativeXmlBackend native;
  RelationalBackend relational;
  ASSERT_TRUE(native.Load(*dtd, *doc).ok());
  ASSERT_TRUE(relational.Load(*dtd, *doc).ok());
  auto a = AnnotateFull(&native, *p);
  auto b = AnnotateFull(&relational, *p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->marked, b->marked);
}

TEST(NativePersistenceTest, SaveLoadPreservesAnnotations) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(dtd.ok() && doc.ok());
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  NativeXmlBackend backend;
  ASSERT_TRUE(backend.Load(*dtd, *doc).ok());
  ASSERT_TRUE(AnnotateFull(&backend, *p).ok());

  std::string file = ::testing::TempDir() + "/xmlac_store.xml";
  ASSERT_TRUE(backend.SaveToFile(file).ok());

  NativeXmlBackend restored;
  ASSERT_TRUE(restored.LoadFromFile(file).ok());
  EXPECT_EQ(restored.NodeCount(), backend.NodeCount());
  EXPECT_EQ(restored.default_sign(), backend.default_sign());
  auto all = xpath::ParsePath("//*");
  ASSERT_TRUE(all.ok());
  auto ids = backend.EvaluateQuery(*all);
  auto restored_ids = restored.EvaluateQuery(*all);
  ASSERT_TRUE(ids.ok() && restored_ids.ok());
  // NodeIds may shift across serialization (text nodes, arena order), but
  // counts and per-node signs must agree positionally.
  ASSERT_EQ(ids->size(), restored_ids->size());
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_EQ(*backend.GetSign((*ids)[i]),
              *restored.GetSign((*restored_ids)[i]))
        << i;
  }
  std::remove(file.c_str());
}

TEST(NativePersistenceTest, SaveUnloadedFails) {
  NativeXmlBackend backend;
  EXPECT_FALSE(backend.SaveToFile("/tmp/x.xml").ok());
  EXPECT_EQ(backend.LoadFromFile("/no/such/file.xml").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace xmlac::engine
