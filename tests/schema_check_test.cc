#include "xpath/schema_check.h"

#include <gtest/gtest.h>

#include "policy/optimizer.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

class SchemaCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    schema_ = std::make_unique<xml::SchemaGraph>(*dtd);
  }

  Path P(std::string_view text) {
    auto r = ParsePath(text);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }

  std::set<std::string> Labels(std::string_view text) {
    return PossibleResultLabels(P(text), *schema_);
  }

  std::unique_ptr<xml::SchemaGraph> schema_;
};

TEST_F(SchemaCheckTest, ConcretePaths) {
  EXPECT_EQ(Labels("/hospital"), std::set<std::string>{"hospital"});
  EXPECT_EQ(Labels("//patient"), std::set<std::string>{"patient"});
  EXPECT_EQ(Labels("//patient/name"), std::set<std::string>{"name"});
}

TEST_F(SchemaCheckTest, WildcardFansOut) {
  std::set<std::string> patient_kids = {"psn", "name", "treatment"};
  EXPECT_EQ(Labels("//patient/*"), patient_kids);
  EXPECT_EQ(Labels("/*"), std::set<std::string>{"hospital"});
  // //* = every label in the schema.
  EXPECT_EQ(Labels("//*"), schema_->labels());
}

TEST_F(SchemaCheckTest, DescendantThroughIntermediates) {
  EXPECT_EQ(Labels("//patient//bill"), std::set<std::string>{"bill"});
  std::set<std::string> under_treatment = {"regular", "experimental", "med",
                                           "bill", "test"};
  EXPECT_EQ(Labels("//treatment//*"), under_treatment);
}

TEST_F(SchemaCheckTest, UnsatisfiablePaths) {
  EXPECT_FALSE(SatisfiableUnderSchema(P("/clinic"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("/hospital/patient"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//psn/name"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//alien"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//treatment/patient"), *schema_));
  EXPECT_TRUE(SatisfiableUnderSchema(P("//patient"), *schema_));
}

TEST_F(SchemaCheckTest, PredicatesFilter) {
  // A patient can have a treatment, a doctor cannot.
  EXPECT_TRUE(SatisfiableUnderSchema(P("//patient[treatment]"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//doctor[treatment]"), *schema_));
  // Descendant predicate through the schema.
  EXPECT_TRUE(
      SatisfiableUnderSchema(P("//patient[.//experimental]"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//staff[.//experimental]"),
                                      *schema_));
  // //name[x] on a PCDATA-only element is unsatisfiable.
  EXPECT_FALSE(SatisfiableUnderSchema(P("//name[psn]"), *schema_));
}

TEST_F(SchemaCheckTest, ComparisonsNeedText) {
  // psn has text; patient does not.
  EXPECT_TRUE(SatisfiableUnderSchema(P("//patient[psn=\"5\"]"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//patients[patient=\"5\"]"),
                                      *schema_));
  EXPECT_TRUE(SatisfiableUnderSchema(P("//bill[. > 1]"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//patient[. = \"x\"]"), *schema_));
}

TEST_F(SchemaCheckTest, WildcardStepsInsidePredicates) {
  EXPECT_TRUE(SatisfiableUnderSchema(P("//patient[*]"), *schema_));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//psn[*]"), *schema_));
}

TEST_F(SchemaCheckTest, DisjointnessUnderSchema) {
  // Both select `name`, but one under patients, the other under staff —
  // same label, so NOT provably disjoint by labels alone.
  EXPECT_FALSE(ProvablyDisjointUnderSchema(P("//patient/name"),
                                           P("//doctor/name"), *schema_));
  EXPECT_TRUE(ProvablyDisjointUnderSchema(P("//patient/psn"),
                                          P("//doctor/sid"), *schema_));
  // One side unsatisfiable -> disjoint.
  EXPECT_TRUE(ProvablyDisjointUnderSchema(P("//alien"), P("//patient"),
                                          *schema_));
  EXPECT_FALSE(ProvablyDisjointUnderSchema(P("//patient/*"),
                                           P("//patient/name"), *schema_));
}

TEST_F(SchemaCheckTest, WorksOnRecursiveSchemas) {
  auto dtd = xml::ParseDtd("<!ELEMENT a (a?, b)><!ELEMENT b (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  xml::SchemaGraph rec(*dtd);
  ASSERT_TRUE(rec.IsRecursive());
  EXPECT_TRUE(SatisfiableUnderSchema(P("//a//a//b"), rec));
  EXPECT_TRUE(SatisfiableUnderSchema(P("//a[.//b]"), rec));
  EXPECT_FALSE(SatisfiableUnderSchema(P("//b/a"), rec));
}

TEST_F(SchemaCheckTest, PruneUnsatisfiableRules) {
  auto p = policy::ParsePolicy(R"(
default deny
conflict deny
allow //patient
allow //doctor[treatment]
deny  //alien
allow //regular
)");
  ASSERT_TRUE(p.ok());
  policy::OptimizerStats stats;
  policy::Policy pruned =
      policy::PruneUnsatisfiableRules(*p, *schema_, &stats);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_EQ(stats.unsatisfiable, 2u);
  EXPECT_EQ(pruned.rules()[0].id, "R1");
  EXPECT_EQ(pruned.rules()[1].id, "R4");
}

}  // namespace
}  // namespace xmlac::xpath
