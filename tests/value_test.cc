#include "reldb/value.h"

#include <gtest/gtest.h>

namespace xmlac::reldb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

TEST(ValueTest, ToSqlLiteralQuotesStrings) {
  EXPECT_EQ(Value::Str("a'b").ToSqlLiteral(), "'a''b'");
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Int(1)));
  EXPECT_FALSE(Value::Int(1).SqlEquals(Value::Null()));
}

TEST(ValueTest, SqlEqualsNumericCoercion) {
  EXPECT_TRUE(Value::Int(5).SqlEquals(Value::Real(5.0)));
  EXPECT_TRUE(Value::Int(5).SqlEquals(Value::Str("5")));
  EXPECT_TRUE(Value::Str("5.0").SqlEquals(Value::Int(5)));
  EXPECT_FALSE(Value::Int(5).SqlEquals(Value::Str("five")));
  EXPECT_TRUE(Value::Str("a").SqlEquals(Value::Str("a")));
  EXPECT_FALSE(Value::Str("a").SqlEquals(Value::Str("b")));
}

TEST(ValueTest, SqlCompareStringsNumericWhenBothParse) {
  int cmp = 99;
  ASSERT_TRUE(Value::Str("9").SqlCompare(Value::Str("10"), &cmp));
  EXPECT_EQ(cmp, -1);  // numeric: 9 < 10 (lexicographic would say "9" > "10")
  ASSERT_TRUE(Value::Str("abc").SqlCompare(Value::Str("abd"), &cmp));
  EXPECT_EQ(cmp, -1);
}

TEST(ValueTest, SqlCompareIncomparable) {
  int cmp;
  EXPECT_FALSE(Value::Int(1).SqlCompare(Value::Str("one"), &cmp));
  EXPECT_FALSE(Value::Null().SqlCompare(Value::Int(1), &cmp));
  // Empty strings are incomparable (shredded no-text elements).
  EXPECT_FALSE(Value::Str("").SqlCompare(Value::Str(""), &cmp));
  EXPECT_FALSE(Value::Str("").SqlCompare(Value::Str("x"), &cmp));
  EXPECT_FALSE(Value::Str("x").SqlEquals(Value::Str("")));
}

TEST(ValueTest, TotalCompareOrdersAcrossTypes) {
  EXPECT_LT(Value::Null().TotalCompare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(5).TotalCompare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().TotalCompare(Value::Null()), 0);
  EXPECT_EQ(Value::Int(3).TotalCompare(Value::Real(3.0)), 0);
  EXPECT_GT(Value::Str("b").TotalCompare(Value::Str("a")), 0);
}

TEST(ValueTest, HashConsistentWithTotalCompare) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

}  // namespace
}  // namespace xmlac::reldb
