#include "reldb/sql_parser.h"

#include <gtest/gtest.h>

namespace xmlac::reldb {
namespace {

Statement MustParse(std::string_view sql) {
  auto r = ParseSql(sql);
  EXPECT_TRUE(r.ok()) << r.status() << " for: " << sql;
  return r.ok() ? std::move(*r) : Statement{};
}

TEST(SqlParserTest, CreateTable) {
  Statement st = MustParse(
      "CREATE TABLE patient (id INT, pid INT, v TEXT, s TEXT);");
  ASSERT_EQ(st.kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(st.create.schema.name(), "patient");
  ASSERT_EQ(st.create.schema.num_columns(), 4u);
  EXPECT_EQ(st.create.schema.columns()[0].type, ValueType::kInt64);
  EXPECT_EQ(st.create.schema.columns()[2].type, ValueType::kString);
}

TEST(SqlParserTest, CreateTableVarcharLength) {
  Statement st = MustParse("CREATE TABLE t (a VARCHAR(32), b REAL)");
  EXPECT_EQ(st.create.schema.columns()[0].type, ValueType::kString);
  EXPECT_EQ(st.create.schema.columns()[1].type, ValueType::kDouble);
}

TEST(SqlParserTest, InsertPositional) {
  Statement st = MustParse("INSERT INTO patient VALUES (4, 2, NULL, '-')");
  ASSERT_EQ(st.kind, Statement::Kind::kInsert);
  EXPECT_EQ(st.insert.table, "patient");
  EXPECT_TRUE(st.insert.columns.empty());
  ASSERT_EQ(st.insert.rows.size(), 1u);
  EXPECT_EQ(st.insert.rows[0][0].AsInt(), 4);
  EXPECT_TRUE(st.insert.rows[0][2].is_null());
  EXPECT_EQ(st.insert.rows[0][3].AsString(), "-");
}

TEST(SqlParserTest, InsertWithColumnsAndMultipleRows) {
  Statement st = MustParse(
      "INSERT INTO t (id, s) VALUES (1, '-'), (2, '+'), (3, '-')");
  ASSERT_EQ(st.insert.columns.size(), 2u);
  ASSERT_EQ(st.insert.rows.size(), 3u);
  EXPECT_EQ(st.insert.rows[1][1].AsString(), "+");
}

TEST(SqlParserTest, StringEscaping) {
  Statement st = MustParse("INSERT INTO t VALUES ('it''s')");
  EXPECT_EQ(st.insert.rows[0][0].AsString(), "it's");
}

TEST(SqlParserTest, NegativeNumbersAndReals) {
  Statement st = MustParse("INSERT INTO t VALUES (-5, 2.5, 1e3)");
  EXPECT_EQ(st.insert.rows[0][0].AsInt(), -5);
  EXPECT_DOUBLE_EQ(st.insert.rows[0][1].AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(st.insert.rows[0][2].AsDouble(), 1000.0);
}

TEST(SqlParserTest, SimpleSelect) {
  Statement st = MustParse("SELECT p.id FROM patient p WHERE p.pid = 2");
  ASSERT_EQ(st.kind, Statement::Kind::kSelect);
  const SelectQuery& q = st.select.first;
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].alias, "p");
  EXPECT_EQ(q.select[0].column, "id");
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].table, "patient");
  EXPECT_EQ(q.from[0].alias, "p");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, ExprKind::kComparison);
}

TEST(SqlParserTest, PaperJoinQuery) {
  // The translated query for rule R1 (Sec. 5.2 of the paper).
  Statement st = MustParse(
      "SELECT pat1.id FROM patients pats1, patient pat1 "
      "WHERE pats1.id = pat1.pid");
  const SelectQuery& q = st.select.first;
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_EQ(q.from[1].effective_alias(), "pat1");
}

TEST(SqlParserTest, UnionExceptCompound) {
  Statement st = MustParse(
      "SELECT a.id FROM a UNION SELECT b.id FROM b "
      "EXCEPT (SELECT c.id FROM c UNION SELECT d.id FROM d)");
  ASSERT_EQ(st.select.rest.size(), 2u);
  EXPECT_EQ(st.select.rest[0].first, CompoundSelect::SetOp::kUnion);
  EXPECT_EQ(st.select.rest[1].first, CompoundSelect::SetOp::kExcept);
  // The parenthesised right side is itself a compound.
  EXPECT_EQ(st.select.rest[1].second.rest.size(), 1u);
}

TEST(SqlParserTest, WhereOperatorsAndLogic) {
  Statement st = MustParse(
      "SELECT t.id FROM t WHERE (t.a >= 5 AND t.b <> 'x') OR NOT t.c < 3");
  ASSERT_NE(st.select.first.where, nullptr);
  EXPECT_EQ(st.select.first.where->kind, ExprKind::kOr);
}

TEST(SqlParserTest, IsNullAndIsNotNull) {
  Statement st = MustParse("SELECT t.id FROM t WHERE t.pid IS NULL");
  EXPECT_EQ(st.select.first.where->kind, ExprKind::kIsNull);
  st = MustParse("SELECT t.id FROM t WHERE t.pid IS NOT NULL");
  EXPECT_EQ(st.select.first.where->kind, ExprKind::kNot);
}

TEST(SqlParserTest, UnqualifiedColumns) {
  Statement st = MustParse("SELECT id FROM t WHERE pid = 1");
  EXPECT_TRUE(st.select.first.select[0].alias.empty());
}

TEST(SqlParserTest, Update) {
  Statement st = MustParse("UPDATE patient SET s = '+' WHERE id = 4");
  ASSERT_EQ(st.kind, Statement::Kind::kUpdate);
  EXPECT_EQ(st.update.table, "patient");
  ASSERT_EQ(st.update.assignments.size(), 1u);
  EXPECT_EQ(st.update.assignments[0].first, "s");
  EXPECT_EQ(st.update.assignments[0].second.AsString(), "+");
  ASSERT_NE(st.update.where, nullptr);
}

TEST(SqlParserTest, UpdateMultipleAssignments) {
  Statement st = MustParse("UPDATE t SET a = 1, b = 'x'");
  ASSERT_EQ(st.update.assignments.size(), 2u);
  EXPECT_EQ(st.update.where, nullptr);
}

TEST(SqlParserTest, Delete) {
  Statement st = MustParse("DELETE FROM t WHERE pid = 9");
  ASSERT_EQ(st.kind, Statement::Kind::kDelete);
  EXPECT_EQ(st.del.table, "t");
}

TEST(SqlParserTest, KeywordsCaseInsensitive) {
  Statement st = MustParse("select t.id from t where t.a = 1");
  ASSERT_EQ(st.kind, Statement::Kind::kSelect);
}

TEST(SqlParserTest, CommentsSkipped) {
  auto r = ParseSqlScript(
      "-- create the table\nCREATE TABLE t (id INT);\n"
      "-- fill it\nINSERT INTO t VALUES (1);");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
}

TEST(SqlParserTest, ScriptParsing) {
  auto r = ParseSqlScript(
      "CREATE TABLE t (id INT); INSERT INTO t VALUES (1); "
      "INSERT INTO t VALUES (2);");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].kind, Statement::Kind::kCreateTable);
}

TEST(SqlParserTest, EmptyScript) {
  auto r = ParseSqlScript("  -- nothing\n ;;; ");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->empty());
}

TEST(SqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT id").ok());
  EXPECT_FALSE(ParseSql("SELECT id FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT id FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES ('unterminated)").ok());
  EXPECT_FALSE(ParseSql("UPDATE t SET").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a BLOB)").ok());
  EXPECT_FALSE(ParseSql("SELECT id FROM t; extra").ok());
  EXPECT_FALSE(ParseSql("DROP TABLE t").ok());
}

TEST(SqlParserTest, SelectToSqlRoundTrip) {
  const char* sql =
      "SELECT pat1.id FROM patients pats1, patient pat1 "
      "WHERE pats1.id = pat1.pid AND pat1.id = 3";
  Statement st = MustParse(sql);
  std::string printed = st.select.ToSql();
  Statement st2 = MustParse(printed);
  EXPECT_EQ(st2.select.ToSql(), printed);
}

}  // namespace
}  // namespace xmlac::reldb
