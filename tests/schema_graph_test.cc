#include "xml/schema_graph.h"

#include <gtest/gtest.h>

#include "xml/dtd.h"

namespace xmlac::xml {
namespace {

constexpr char kHospitalDtd[] = R"(
<!ELEMENT hospital (dept+)>
<!ELEMENT dept (patients, staffinfo)>
<!ELEMENT patients (patient*)>
<!ELEMENT staffinfo (staff*)>
<!ELEMENT patient (psn, name, treatment?)>
<!ELEMENT treatment (regular? | experimental?)>
<!ELEMENT regular (med, bill)>
<!ELEMENT experimental (test, bill)>
<!ELEMENT staff (nurse | doctor)>
<!ELEMENT nurse (sid, name, phone)>
<!ELEMENT doctor (sid, name, phone)>
<!ELEMENT psn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT med (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT test (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
)";

SchemaGraph Hospital() {
  auto r = ParseDtd(kHospitalDtd);
  EXPECT_TRUE(r.ok()) << r.status();
  return SchemaGraph(*r);
}

TEST(SchemaGraphTest, ChildrenAndParents) {
  SchemaGraph g = Hospital();
  EXPECT_EQ(g.root(), "hospital");
  EXPECT_EQ(g.Children("hospital"), std::set<std::string>{"dept"});
  std::set<std::string> patient_kids = {"psn", "name", "treatment"};
  EXPECT_EQ(g.Children("patient"), patient_kids);
  std::set<std::string> name_parents = {"patient", "nurse", "doctor"};
  EXPECT_EQ(g.Parents("name"), name_parents);
  EXPECT_TRUE(g.Children("psn").empty());
}

TEST(SchemaGraphTest, HasText) {
  SchemaGraph g = Hospital();
  EXPECT_TRUE(g.HasText("psn"));
  EXPECT_TRUE(g.HasText("bill"));
  EXPECT_FALSE(g.HasText("patient"));
  EXPECT_FALSE(g.HasText("hospital"));
}

TEST(SchemaGraphTest, NonRecursive) {
  SchemaGraph g = Hospital();
  EXPECT_FALSE(g.IsRecursive());
}

TEST(SchemaGraphTest, RecursiveDetected) {
  auto r = ParseDtd("<!ELEMENT a (b)><!ELEMENT b (a?)>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SchemaGraph(*r).IsRecursive());
}

TEST(SchemaGraphTest, SelfRecursionDetected) {
  auto r = ParseDtd("<!ELEMENT a (a*, b)><!ELEMENT b (#PCDATA)>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(SchemaGraph(*r).IsRecursive());
}

TEST(SchemaGraphTest, Descendants) {
  SchemaGraph g = Hospital();
  auto d = g.Descendants("treatment");
  std::set<std::string> expected = {"regular", "experimental", "med", "bill",
                                    "test"};
  EXPECT_EQ(d, expected);
  EXPECT_TRUE(g.Descendants("psn").empty());
  // From the root everything except the root itself is reachable.
  EXPECT_EQ(g.Descendants("hospital").size(), g.labels().size() - 1);
}

TEST(SchemaGraphTest, PathsBetweenSingle) {
  SchemaGraph g = Hospital();
  auto paths = g.PathsBetween("patient", "experimental");
  ASSERT_EQ(paths.size(), 1u);
  std::vector<std::string> expected = {"treatment", "experimental"};
  EXPECT_EQ(paths[0], expected);
}

TEST(SchemaGraphTest, PathsBetweenMultiple) {
  SchemaGraph g = Hospital();
  // name is reachable from staff via nurse and via doctor.
  auto paths = g.PathsBetween("staff", "name");
  ASSERT_EQ(paths.size(), 2u);
}

TEST(SchemaGraphTest, PathsBetweenUnreachable) {
  SchemaGraph g = Hospital();
  EXPECT_TRUE(g.PathsBetween("psn", "name").empty());
  EXPECT_TRUE(g.PathsBetween("treatment", "patient").empty());
}

TEST(SchemaGraphTest, PathsBetweenBillHasTwoRoutes) {
  SchemaGraph g = Hospital();
  auto paths = g.PathsBetween("patient", "bill");
  // patient/treatment/regular/bill and patient/treatment/experimental/bill.
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), "treatment");
    EXPECT_EQ(p.back(), "bill");
    EXPECT_EQ(p.size(), 3u);
  }
}

}  // namespace
}  // namespace xmlac::xml
