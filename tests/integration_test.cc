// Full-pipeline integration: the paper's experiment cycle — generate an
// auction site, derive a coverage policy, load + annotate on all three
// backends through the AccessController facade, run the query workload, and
// replay it as updates — asserting at every step that the three stores give
// byte-identical answers.

#include <gtest/gtest.h>

#include <memory>

#include "engine/access_controller.h"
#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "workload/coverage.h"
#include "workload/hospital.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

struct Stores {
  std::unique_ptr<AccessController> native;
  std::unique_ptr<AccessController> row;
  std::unique_ptr<AccessController> column;

  std::vector<AccessController*> all() {
    return {native.get(), row.get(), column.get()};
  }
};

Stores MakeStores() {
  Stores s;
  s.native = std::make_unique<AccessController>(
      std::make_unique<NativeXmlBackend>());
  RelationalOptions row_opt;
  row_opt.storage = reldb::StorageKind::kRowStore;
  s.row = std::make_unique<AccessController>(
      std::make_unique<RelationalBackend>(row_opt));
  RelationalOptions col_opt;
  col_opt.storage = reldb::StorageKind::kColumnStore;
  s.column = std::make_unique<AccessController>(
      std::make_unique<RelationalBackend>(col_opt));
  return s;
}

TEST(IntegrationTest, FullExperimentCycleAgreesAcrossBackends) {
  // 1. Data + policy, as the evaluation section builds them.
  workload::XmarkGenerator gen;
  workload::XmarkOptions xopt;
  xopt.factor = 0.01;
  xml::Document doc = gen.Generate(xopt);
  auto dtd = workload::XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok());
  workload::CoverageOptions copt;
  copt.target = 0.5;
  auto policy = workload::GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(policy.ok());
  double coverage = workload::MeasureCoverage(*policy, doc);
  EXPECT_NEAR(coverage, 0.5, 0.08);

  // 2. Load + annotate everywhere.
  Stores stores = MakeStores();
  for (AccessController* ac : stores.all()) {
    ASSERT_TRUE(ac->LoadParsed(*dtd, doc).ok());
    ASSERT_TRUE(ac->SetPolicyParsed(*policy).ok());
    EXPECT_EQ(ac->backend()->NodeCount(), doc.AllElements().size());
  }

  // 3. The 55-query response workload: identical outcomes per query.
  workload::QueryWorkloadOptions qopt;
  qopt.count = 55;
  auto queries = workload::GenerateQueries(doc, qopt);
  size_t granted = 0;
  for (const xpath::Path& q : queries) {
    std::string expr = xpath::ToString(q);
    auto rn = stores.native->Query(expr);
    auto rr = stores.row->Query(expr);
    auto rc = stores.column->Query(expr);
    if (!rr.ok() && rr.status().code() == StatusCode::kUnsupported) continue;
    ASSERT_EQ(rn.ok(), rr.ok()) << expr;
    ASSERT_EQ(rn.ok(), rc.ok()) << expr;
    if (rn.ok()) {
      ++granted;
      EXPECT_EQ(rn->ids, rr->ids) << expr;
      EXPECT_EQ(rn->ids, rc->ids) << expr;
    }
  }
  // The workload must exercise both outcomes.
  EXPECT_GT(granted, 0u);
  EXPECT_LT(granted, queries.size());

  // 4. Replay a slice of the workload as delete updates; after each, the
  // stores again agree on every sign.
  size_t updates_applied = 0;
  for (size_t i = 0; i < queries.size() && updates_applied < 8; ++i) {
    std::string expr = xpath::ToString(queries[i]);
    auto un = stores.native->Update(expr);
    if (!un.ok() && un.status().code() == StatusCode::kUnsupported) continue;
    auto ur = stores.row->Update(expr);
    auto uc = stores.column->Update(expr);
    if (!ur.ok() && ur.status().code() == StatusCode::kUnsupported) {
      // Applied on native but unsupported relationally (wildcard fanout):
      // regenerate relational stores to stay in sync.
      GTEST_SKIP() << "translator budget hit mid-sequence for " << expr;
    }
    ASSERT_TRUE(un.ok() && ur.ok() && uc.ok()) << expr;
    EXPECT_EQ(un->nodes_deleted, ur->nodes_deleted) << expr;
    EXPECT_EQ(un->rules_triggered, ur->rules_triggered) << expr;
    ++updates_applied;

    auto count_n = stores.native->backend()->NodeCount();
    EXPECT_EQ(count_n, stores.row->backend()->NodeCount()) << expr;
    EXPECT_EQ(count_n, stores.column->backend()->NodeCount()) << expr;
  }
  EXPECT_GT(updates_applied, 0u);

  // 5. Final sign audit over every surviving element.
  auto all = xpath::ParsePath("//*");
  ASSERT_TRUE(all.ok());
  auto ids = stores.native->backend()->EvaluateQuery(*all);
  ASSERT_TRUE(ids.ok());
  for (UniversalId id : *ids) {
    char expected = *stores.native->backend()->GetSign(id);
    EXPECT_EQ(*stores.row->backend()->GetSign(id), expected) << id;
    EXPECT_EQ(*stores.column->backend()->GetSign(id), expected) << id;
  }
}

TEST(IntegrationTest, HospitalScenarioThroughEveryFeature) {
  // The running example exercising the whole public API surface in order.
  workload::XmarkGenerator unused;
  (void)unused;
  auto ac = std::make_unique<AccessController>(
      std::make_unique<NativeXmlBackend>());
  ASSERT_TRUE(ac->Load(workload::kHospitalDtd,
                       "<hospital><dept><patients>"
                       "<patient><psn>1</psn><name>a b</name></patient>"
                       "<patient><psn>2</psn><name>c d</name>"
                       "<treatment><regular><med>m</med><bill>50</bill>"
                       "</regular></treatment></patient>"
                       "</patients><staffinfo/></dept></hospital>")
                  .ok());
  ASSERT_TRUE(ac->SetPolicy(workload::kHospitalPolicyText).ok());
  EXPECT_EQ(ac->active_policy().size(), 5u);  // Table 3

  // Queries.
  EXPECT_TRUE(ac->Query("//patient/name")->granted);
  EXPECT_FALSE(ac->Query("//patient").ok());
  // Insert flips patient 1 to denied.
  ASSERT_TRUE(ac->Insert("//patient[psn=\"1\"]", "<treatment/>").ok());
  EXPECT_FALSE(ac->Query("//patient[psn=\"1\"]").ok());
  // Delete makes everything visible again.
  ASSERT_TRUE(ac->Update("//treatment").ok());
  EXPECT_TRUE(ac->Query("//patient")->granted);
  // XQuery surface.
  auto* native = static_cast<NativeXmlBackend*>(ac->backend());
  auto count = native->RunXQuery("count(doc(\"xmlgen\")//patient)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<double>(count->v), 2.0);
  // Security view: everything accessible is patients + names (+ nothing
  // above them, so the view is empty — root is denied).
  EXPECT_TRUE(native->AccessibleView().empty());
}

}  // namespace
}  // namespace xmlac::engine
