#include "xmldb/xquery.h"

#include <gtest/gtest.h>

#include "policy/semantics.h"
#include "tests/testdata.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::xmldb {
namespace {

class XQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(d.ok()) << d.status();
    doc_ = std::move(*d);
    engine_.RegisterDocument("xmlgen", &doc_);
  }

  XqValue MustRun(std::string_view q) {
    auto r = engine_.Run(q);
    EXPECT_TRUE(r.ok()) << r.status() << " for: " << q;
    return r.ok() ? std::move(*r) : XqValue{};
  }

  double Count(std::string_view q) {
    XqValue v = MustRun(std::string("count(") + std::string(q) + ")");
    EXPECT_EQ(v.v.index(), 2u);
    return std::get<double>(v.v);
  }

  xml::Document doc_;
  XQueryEngine engine_;
};

TEST_F(XQueryTest, DocPathSelectsNodes) {
  XqValue v = MustRun("doc(\"xmlgen\")//patient");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 3u);
  // Bare doc() is the root.
  v = MustRun("doc(\"xmlgen\")");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 1u);
  EXPECT_EQ(v.nodes()[0], doc_.root());
}

TEST_F(XQueryTest, UnionAndExcept) {
  EXPECT_EQ(Count("doc(\"xmlgen\")//patient union doc(\"xmlgen\")//regular"),
            4.0);
  EXPECT_EQ(Count("doc(\"xmlgen\")//patient except "
                  "doc(\"xmlgen\")//patient[treatment]"),
            1.0);
  // Union deduplicates.
  EXPECT_EQ(Count("doc(\"xmlgen\")//patient union doc(\"xmlgen\")//patient"),
            3.0);
}

TEST_F(XQueryTest, ForReturnIteratesBindings) {
  // One name per patient: 3 nodes.
  XqValue v = MustRun(
      "for $p in doc(\"xmlgen\")//patient return $p/name");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 3u);
}

TEST_F(XQueryTest, WhereFiltersBindings) {
  XqValue v = MustRun(
      "for $p in doc(\"xmlgen\")//patient where $p/treatment "
      "return $p/name");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 2u);
  v = MustRun(
      "for $p in doc(\"xmlgen\")//patient where $p/psn = \"099\" "
      "return $p");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 1u);
}

TEST_F(XQueryTest, WhereComparisonsAreNumericWhenPossible) {
  XqValue v = MustRun(
      "for $b in doc(\"xmlgen\")//bill where $b > 1000 return $b");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 1u);  // the 1600 bill
}

// The paper's own annotation query (Sec. 5.2), with Table 3's rules inlined.
TEST_F(XQueryTest, PaperAnnotationQuery) {
  auto r = engine_.Run(R"(
    for $n := doc("xmlgen")(
        (//patient union //patient/name union //regular)
        except (//patient[treatment] union //patient[.//experimental]))
    return xmlac:annotate($n, "+")
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(engine_.last_annotations(), 5u);
  // The annotated document matches the Table 2 ground truth.
  auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  policy::NodeSet truth = policy::AccessibleNodes(*p, doc_);
  for (xml::NodeId n : doc_.AllElements()) {
    auto sign = doc_.GetAttribute(n, "sign");
    EXPECT_EQ(sign.has_value() && *sign == "+", truth.count(n) > 0)
        << "node " << n << " (" << doc_.node(n).label << ")";
  }
}

TEST_F(XQueryTest, AnnotateReplacesExistingSign) {
  ASSERT_TRUE(
      engine_.Run("xmlac:annotate(doc(\"xmlgen\")//regular, \"+\")").ok());
  auto regulars = xpath::Evaluate(*xpath::ParsePath("//regular"), doc_);
  ASSERT_EQ(regulars.size(), 1u);
  EXPECT_EQ(*doc_.GetAttribute(regulars[0], "sign"), "+");
  ASSERT_TRUE(
      engine_.Run("xmlac:annotate(doc(\"xmlgen\")//regular, \"-\")").ok());
  EXPECT_EQ(*doc_.GetAttribute(regulars[0], "sign"), "-");
}

TEST_F(XQueryTest, CountNestedInFor) {
  // Sum over patients of 1 (count of self) = 3.
  XqValue v = MustRun(
      "for $p in doc(\"xmlgen\")//patient return count($p)");
  ASSERT_EQ(v.v.index(), 2u);
  EXPECT_EQ(std::get<double>(v.v), 3.0);
}

TEST_F(XQueryTest, BarePathsUseSingleRegisteredDocument) {
  EXPECT_EQ(Count("//patient"), 3.0);
  // With two documents it becomes ambiguous.
  xml::Document other;
  other.CreateRoot("x");
  engine_.RegisterDocument("other", &other);
  auto r = engine_.Run("count(//patient)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Explicit doc() still works.
  EXPECT_EQ(Count("doc(\"xmlgen\")//patient"), 3.0);
}

TEST_F(XQueryTest, LetBindsValues) {
  // Bind a node sequence once, reuse it twice.
  XqValue v = MustRun(
      "let $pats := doc(\"xmlgen\")//patient "
      "return count($pats) ");
  ASSERT_EQ(v.v.index(), 2u);
  EXPECT_EQ(std::get<double>(v.v), 3.0);
  // Paths apply to every node in the bound sequence.
  v = MustRun(
      "let $pats := doc(\"xmlgen\")//patient return $pats/name");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 3u);
  // Lets nest and shadow.
  v = MustRun(
      "let $a := doc(\"xmlgen\")//patient "
      "let $a := $a/name return count($a)");
  ASSERT_EQ(v.v.index(), 2u);
  EXPECT_EQ(std::get<double>(v.v), 3.0);
}

TEST_F(XQueryTest, LetInsideFor) {
  XqValue v = MustRun(
      "for $p in doc(\"xmlgen\")//patient "
      "let $bills := $p//bill "
      "where count($bills) > 0 return $p");
  ASSERT_TRUE(v.is_nodes());
  EXPECT_EQ(v.nodes().size(), 2u);  // the two patients with treatments
}

TEST_F(XQueryTest, LetErrors) {
  EXPECT_FALSE(engine_.Run("let $x doc(\"xmlgen\")//a return $x").ok());
  EXPECT_FALSE(engine_.Run("let $x := //a").ok());  // missing return
  // Path on a non-node binding.
  EXPECT_FALSE(engine_.Run("let $x := \"str\" return $x/name").ok());
}

TEST_F(XQueryTest, Errors) {
  EXPECT_FALSE(engine_.Run("").ok());
  EXPECT_FALSE(engine_.Run("doc(\"nope\")//a").ok());
  EXPECT_FALSE(engine_.Run("for $x doc(\"xmlgen\")//a return $x").ok());
  EXPECT_FALSE(engine_.Run("xmlac:annotate(doc(\"xmlgen\")//a, \"?\")").ok());
  EXPECT_FALSE(engine_.Run("$unbound/name").ok());
  EXPECT_FALSE(engine_.Run("count(//patient) extra").ok());
  EXPECT_FALSE(engine_.Run("\"a\" union \"b\"").ok());
}

TEST_F(XQueryTest, AstToStringRoundTripsThroughParser) {
  const char* queries[] = {
      "doc(\"xmlgen\")//patient",
      "for $p in doc(\"xmlgen\")//patient where $p/treatment return "
      "$p/name",
      "(doc(\"xmlgen\")//a union doc(\"xmlgen\")//b) except "
      "doc(\"xmlgen\")//c",
      "xmlac:annotate(doc(\"xmlgen\")//regular, \"+\")",
      "count(doc(\"xmlgen\")//bill)",
      "let $a := doc(\"xmlgen\")//patient return count($a)",
      "for $p in doc(\"xmlgen\")//patient let $b := $p//bill where "
      "count($b) > 0 return $p",
  };
  for (const char* q : queries) {
    auto e = ParseXQuery(q);
    ASSERT_TRUE(e.ok()) << e.status() << " for " << q;
    auto printed = (*e)->ToString();
    auto e2 = ParseXQuery(printed);
    ASSERT_TRUE(e2.ok()) << e2.status() << " for printed form: " << printed;
    EXPECT_EQ((*e2)->ToString(), printed);
  }
}

}  // namespace
}  // namespace xmlac::xmldb
