// Property suite for the static analyses:
//  * containment soundness — Contains(p, q) implies [[p]](T) ⊆ [[q]](T);
//  * disjointness soundness — ProvablyDisjoint(p, q) implies empty
//    intersection (both plain and schema-aware variants);
//  * schema-check soundness — evaluation results only carry labels in
//    PossibleResultLabels, and unsatisfiable paths return nothing;
//  * a seeded sweep through the canonical-model containment oracle
//    (testing/diff.h), whose failures print seed + minimized repro.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testing/diff.h"
#include "testing/generators.h"
#include "workload/hospital.h"
#include "workload/xmark.h"
#include "xml/schema_graph.h"
#include "xpath/containment.h"
#include "xpath/evaluator.h"
#include "xpath/schema_check.h"

namespace xmlac::xpath {
namespace {

namespace tst = xmlac::testing;

std::set<xml::NodeId> EvalSet(const Path& p, const xml::Document& doc) {
  auto v = Evaluate(p, doc);
  return std::set<xml::NodeId>(v.begin(), v.end());
}

// The homomorphism test vs exact canonical-model enumeration, on random
// instances from the shared generator family.
class SeededContainmentDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededContainmentDiffTest, HomomorphismTestIsSound) {
  tst::DiffOptions diff;
  diff.containment_pairs = 24;
  tst::CheckFn check = [diff](const tst::Instance& instance) {
    return tst::CheckContainment(instance, diff);
  };
  EXPECT_EQ(tst::RunSeededCheck(GetParam(), {}, check), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededContainmentDiffTest,
                         ::testing::Range<uint64_t>(1, 9));

class StaticAnalysisPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    workload::XmarkGenerator gen;
    workload::XmarkOptions opt;
    opt.factor = 0.008;
    opt.seed = GetParam() * 31 + 5;
    doc_ = gen.Generate(opt);
    auto dtd = workload::XmarkGenerator::ParseXmarkDtd();
    ASSERT_TRUE(dtd.ok());
    schema_ = std::make_unique<xml::SchemaGraph>(*dtd);
  }

  xml::Document doc_;
  std::unique_ptr<xml::SchemaGraph> schema_;
};

TEST_P(StaticAnalysisPropertyTest, ContainmentIsSound) {
  tst::RandomPathGenerator gen(doc_, GetParam());
  size_t positives = 0;
  for (int i = 0; i < 80; ++i) {
    Path p = gen.Next();
    Path q = gen.Next();
    if (Contains(p, q)) {
      ++positives;
      std::set<xml::NodeId> sp = EvalSet(p, doc_);
      std::set<xml::NodeId> sq = EvalSet(q, doc_);
      for (xml::NodeId id : sp) {
        ASSERT_TRUE(sq.count(id) > 0)
            << ToString(p) << " ⊑ " << ToString(q)
            << " claimed but node " << id << " only in p";
      }
    }
    // Reflexivity on every sample.
    EXPECT_TRUE(Contains(p, p)) << ToString(p);
  }
  // The generator produces enough related pairs for the check to bite.
  (void)positives;
}

TEST_P(StaticAnalysisPropertyTest, DisjointnessIsSound) {
  tst::RandomPathGenerator gen(doc_, GetParam() + 1000);
  for (int i = 0; i < 80; ++i) {
    Path p = gen.Next();
    Path q = gen.Next();
    if (ProvablyDisjoint(p, q)) {
      std::set<xml::NodeId> sp = EvalSet(p, doc_);
      std::set<xml::NodeId> sq = EvalSet(q, doc_);
      for (xml::NodeId id : sp) {
        ASSERT_EQ(sq.count(id), 0u)
            << ToString(p) << " claimed disjoint from " << ToString(q);
      }
    }
    if (ProvablyDisjointUnderSchema(p, q, *schema_)) {
      std::set<xml::NodeId> sp = EvalSet(p, doc_);
      std::set<xml::NodeId> sq = EvalSet(q, doc_);
      for (xml::NodeId id : sp) {
        ASSERT_EQ(sq.count(id), 0u)
            << ToString(p) << " claimed schema-disjoint from " << ToString(q);
      }
    }
  }
}

TEST_P(StaticAnalysisPropertyTest, SchemaCheckIsSound) {
  tst::RandomPathGenerator gen(doc_, GetParam() + 2000);
  for (int i = 0; i < 80; ++i) {
    Path p = gen.Next();
    std::set<std::string> possible = PossibleResultLabels(p, *schema_);
    auto result = Evaluate(p, doc_);
    if (possible.empty()) {
      EXPECT_TRUE(result.empty())
          << ToString(p) << " claimed unsatisfiable but matched";
      continue;
    }
    for (xml::NodeId id : result) {
      EXPECT_TRUE(possible.count(doc_.node(id).label) > 0)
          << ToString(p) << " selected unexpected label "
          << doc_.node(id).label;
    }
  }
}

// Containment must also respect expansion: every expanded path of a rule
// subsumes... precisely, the rule is contained in its own spine expansion.
TEST_P(StaticAnalysisPropertyTest, SpineExpansionContainsRule) {
  tst::RandomPathGenerator gen(doc_, GetParam() + 3000);
  for (int i = 0; i < 40; ++i) {
    Path p = gen.Next();
    // Strip predicates from the spine: p ⊑ stripped.
    Path stripped = p;
    for (Step& s : stripped.steps) s.predicates.clear();
    EXPECT_TRUE(Contains(p, stripped)) << ToString(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticAnalysisPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace xmlac::xpath
