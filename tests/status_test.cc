#include "common/status.h"

#include <gtest/gtest.h>

namespace xmlac {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::AccessDenied("x").code(), StatusCode::kAccessDenied);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kAccessDenied), "AccessDenied");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status UseAssignOrReturn(int in, int* out) {
  XMLAC_ASSIGN_OR_RETURN(int v, ParsePositive(in));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-3, &out).ok());
}

}  // namespace
}  // namespace xmlac
