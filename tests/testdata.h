#ifndef XMLAC_TESTS_TESTDATA_H_
#define XMLAC_TESTS_TESTDATA_H_

// Shared fixtures: the paper's hospital schema (Fig. 1) and the partial
// hospital document (Fig. 2), used across module tests.

namespace xmlac::testdata {

inline constexpr char kHospitalDtd[] = R"(
<!ELEMENT hospital (dept+)>
<!ELEMENT dept (patients, staffinfo)>
<!ELEMENT patients (patient*)>
<!ELEMENT staffinfo (staff*)>
<!ELEMENT patient (psn, name, treatment?)>
<!ELEMENT treatment (regular? | experimental?)>
<!ELEMENT regular (med, bill)>
<!ELEMENT experimental (test, bill)>
<!ELEMENT staff (nurse | doctor)>
<!ELEMENT nurse (sid, name, phone)>
<!ELEMENT doctor (sid, name, phone)>
<!ELEMENT psn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT med (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT test (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
)";

// Figure 2 of the paper: three patients — john doe (regular treatment,
// enoxaparin/700), jane doe (experimental treatment, regression
// hypnosis/1600), joy smith (no treatment).
inline constexpr char kHospitalDoc[] = R"(
<hospital>
  <dept>
    <patients>
      <patient>
        <psn>033</psn>
        <name>john doe</name>
        <treatment>
          <regular>
            <med>enoxaparin</med>
            <bill>700</bill>
          </regular>
        </treatment>
      </patient>
      <patient>
        <psn>042</psn>
        <name>jane doe</name>
        <treatment>
          <experimental>
            <test>regression hypnosis</test>
            <bill>1600</bill>
          </experimental>
        </treatment>
      </patient>
      <patient>
        <psn>099</psn>
        <name>joy smith</name>
      </patient>
    </patients>
    <staffinfo>
      <staff>
        <doctor>
          <sid>d01</sid>
          <name>gregory house</name>
          <phone>555-0100</phone>
        </doctor>
      </staff>
      <staff>
        <nurse>
          <sid>n07</sid>
          <name>carol hathaway</name>
          <phone>555-0101</phone>
        </nurse>
      </staff>
    </staffinfo>
  </dept>
</hospital>
)";

// Table 1 of the paper, in the policy text format (see policy/parser.h):
// deny-by-default, deny-overrides.
inline constexpr char kHospitalPolicy[] = R"(
default deny
conflict deny
allow //patient
allow //patient/name
deny  //patient[treatment]
allow //patient[treatment]/name
deny  //patient[.//experimental]
allow //regular
allow //regular[med="celecoxib"]
allow //regular[bill > 1000]
)";

}  // namespace xmlac::testdata

#endif  // XMLAC_TESTS_TESTDATA_H_
