#include "obs/ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace xmlac::obs {
namespace {

TEST(InternNameTest, StableAndIdempotent) {
  uint16_t a = InternName("ring_test.alpha");
  uint16_t b = InternName("ring_test.beta");
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0);  // 0 is reserved
  EXPECT_EQ(a, InternName("ring_test.alpha"));
  EXPECT_EQ(NameOf(a), "ring_test.alpha");
  EXPECT_EQ(NameOf(b), "ring_test.beta");
}

TEST(InternNameTest, UnknownIdResolvesToQuestionMark) {
  EXPECT_EQ(NameOf(65535), "?");
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 8u);   // minimum
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

TEST(EventRingTest, DrainReturnsEventsInOrder) {
  EventRing ring(16);
  uint16_t name = InternName("ring_test.span");
  ring.Append(EventType::kSpanBegin, name, 0);
  ring.Append(EventType::kCounter, name, 7);
  ring.Append(EventType::kSpanEnd, name, 0);
  std::vector<Event> out;
  EXPECT_EQ(ring.Drain(&out), 0u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].type, EventType::kSpanBegin);
  EXPECT_EQ(out[1].type, EventType::kCounter);
  EXPECT_EQ(out[1].arg, 7u);
  EXPECT_EQ(out[2].type, EventType::kSpanEnd);
  EXPECT_EQ(out[0].name, name);
  // Timestamps are monotone within one producer.
  EXPECT_LE(out[0].ts_ns, out[1].ts_ns);
  EXPECT_LE(out[1].ts_ns, out[2].ts_ns);
  // Drained means drained.
  out.clear();
  EXPECT_EQ(ring.Drain(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(EventRingTest, PayloadFieldsRoundTrip) {
  EventRing ring(8);
  ring.Append(EventType::kRequestEnd, 123, 456789, 5);
  std::vector<Event> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, 123);
  EXPECT_EQ(out[0].arg, 456789u);
  EXPECT_EQ(out[0].type, EventType::kRequestEnd);
  EXPECT_EQ(out[0].klass, 5);
}

TEST(EventRingTest, WrapAroundKeepsNewestAndCountsDrops) {
  EventRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  // 20 appends into 8 slots: the 12 oldest are overwritten.
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Append(EventType::kCounter, 1, i);
  }
  std::vector<Event> out;
  uint64_t lost = ring.Drain(&out);
  EXPECT_EQ(lost, 12u);
  EXPECT_EQ(ring.dropped(), 12u);
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arg, 12 + i) << "oldest surviving event is #12";
  }
  EXPECT_EQ(ring.appended(), 20u);
}

TEST(EventRingTest, DropAccountingAccumulatesAcrossDrains) {
  EventRing ring(8);
  std::vector<Event> out;
  for (uint64_t i = 0; i < 10; ++i) ring.Append(EventType::kCounter, 1, i);
  EXPECT_EQ(ring.Drain(&out), 2u);
  for (uint64_t i = 0; i < 13; ++i) ring.Append(EventType::kCounter, 1, i);
  EXPECT_EQ(ring.Drain(&out), 5u);
  EXPECT_EQ(ring.dropped(), 7u);
}

// The TSan-relevant test: one producer appending flat out while a drainer
// consumes.  Every event must either surface exactly once or be counted as
// dropped — no duplicates, no losses, no torn reads.
TEST(EventRingTest, ConcurrentProducerAndDrainer) {
  EventRing ring(1 << 8);
  constexpr uint64_t kEvents = 200000;
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (uint64_t i = 0; i < kEvents; ++i) {
      ring.Append(EventType::kCounter, 1, i);
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<Event> out;
  uint64_t lost = 0;
  while (!done.load(std::memory_order_acquire)) {
    lost += ring.Drain(&out);
  }
  lost += ring.Drain(&out);
  producer.join();
  lost += ring.Drain(&out);
  EXPECT_EQ(out.size() + lost, kEvents);
  // Surfaced args must be strictly increasing — a torn or duplicated slot
  // would violate this.
  for (size_t i = 1; i < out.size(); ++i) {
    ASSERT_LT(out[i - 1].arg, out[i].arg) << "at index " << i;
  }
}

TEST(ScopedRingTest, InstallsAndRestores) {
  EXPECT_EQ(CurrentRing(), nullptr);
  EventRing outer(8), inner(8);
  {
    ScopedRing a(&outer);
    EXPECT_EQ(CurrentRing(), &outer);
    {
      ScopedRing b(&inner);
      EXPECT_EQ(CurrentRing(), &inner);
    }
    EXPECT_EQ(CurrentRing(), &outer);
  }
  EXPECT_EQ(CurrentRing(), nullptr);
}

TEST(ScopedRingTest, EmitEventRoutesToCurrentRing) {
  EmitEvent(EventType::kInstant, 1, 2);  // no ring: must not crash
  EventRing ring(8);
  {
    ScopedRing context(&ring);
    EmitEvent(EventType::kInstant, 1, 2);
  }
  EmitEvent(EventType::kInstant, 1, 3);  // after restore: dropped again
  std::vector<Event> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arg, 2u);
}

}  // namespace
}  // namespace xmlac::obs
