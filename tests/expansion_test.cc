#include "xpath/expansion.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

Path P(std::string_view text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

class ExpansionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    schema_ = std::make_unique<xml::SchemaGraph>(*dtd);
  }

  std::vector<std::string> ExpandStrings(std::string_view rule,
                                         const ExpansionOptions& opt = {}) {
    std::vector<std::string> out;
    for (const Path& p : Expand(P(rule), schema_.get(), opt)) {
      out.push_back(ToString(p));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<xml::SchemaGraph> schema_;
};

TEST_F(ExpansionTest, PlainPathExpandsToItself) {
  EXPECT_EQ(ExpandStrings("//patient"),
            std::vector<std::string>({"//patient"}));
}

TEST_F(ExpansionTest, PaperExampleR3) {
  // //patient[treatment] -> //patient, //patient/treatment  (Sec. 5.3).
  EXPECT_EQ(ExpandStrings("//patient[treatment]"),
            std::vector<std::string>({"//patient", "//patient/treatment"}));
}

TEST_F(ExpansionTest, PaperExampleR5SchemaRewrite) {
  // //patient[.//experimental] -> //patient, //patient/treatment,
  //                               //patient/treatment/experimental.
  EXPECT_EQ(ExpandStrings("//patient[.//experimental]"),
            std::vector<std::string>({"//patient", "//patient/treatment",
                                      "//patient/treatment/experimental"}));
}

TEST_F(ExpansionTest, WithoutSchemaRewriteDescendantKeptVerbatim) {
  ExpansionOptions opt;
  opt.schema_rewrite = false;
  EXPECT_EQ(ExpandStrings("//patient[.//experimental]", opt),
            std::vector<std::string>(
                {"//patient", "//patient//experimental"}));
}

TEST_F(ExpansionTest, MultiStepPredicate) {
  EXPECT_EQ(
      ExpandStrings("//patient[treatment/regular]"),
      std::vector<std::string>({"//patient", "//patient/treatment",
                                "//patient/treatment/regular"}));
}

TEST_F(ExpansionTest, ComparisonPredicateContributesPath) {
  EXPECT_EQ(ExpandStrings("//regular[med=\"celecoxib\"]"),
            std::vector<std::string>({"//regular", "//regular/med"}));
}

TEST_F(ExpansionTest, SelfComparisonAddsNothing) {
  EXPECT_EQ(ExpandStrings("//bill[. > 1000]"),
            std::vector<std::string>({"//bill"}));
}

TEST_F(ExpansionTest, SpineStepsAllEmitted) {
  EXPECT_EQ(ExpandStrings("/hospital/dept/patients"),
            std::vector<std::string>({"/hospital", "/hospital/dept",
                                      "/hospital/dept/patients"}));
}

TEST_F(ExpansionTest, SpineDescendantRewrittenViaSchema) {
  // //patient//bill has two schema chains (regular and experimental).
  auto got = ExpandStrings("//patient//bill");
  std::vector<std::string> expected = {
      "//patient",
      "//patient/treatment",
      "//patient/treatment/experimental",
      "//patient/treatment/experimental/bill",
      "//patient/treatment/regular",
      "//patient/treatment/regular/bill",
  };
  EXPECT_EQ(got, expected);
}

TEST_F(ExpansionTest, MultiplePredicates) {
  auto got = ExpandStrings("//patient[psn][name]");
  std::vector<std::string> expected = {"//patient", "//patient/name",
                                       "//patient/psn"};
  EXPECT_EQ(got, expected);
}

TEST_F(ExpansionTest, NestedPredicates) {
  auto got = ExpandStrings("//patient[treatment[regular]]");
  std::vector<std::string> expected = {"//patient", "//patient/treatment",
                                       "//patient/treatment/regular"};
  EXPECT_EQ(got, expected);
}

TEST_F(ExpansionTest, NullSchemaKeepsDescendants) {
  auto paths = Expand(P("//patient[.//experimental]"), nullptr);
  std::vector<std::string> got;
  for (const Path& p : paths) got.push_back(ToString(p));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, std::vector<std::string>(
                     {"//patient", "//patient//experimental"}));
}

TEST_F(ExpansionTest, RecursiveSchemaKeepsDescendants) {
  auto dtd = xml::ParseDtd("<!ELEMENT a (a?, b)><!ELEMENT b (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  xml::SchemaGraph rec(*dtd);
  ASSERT_TRUE(rec.IsRecursive());
  auto paths = Expand(P("//a[.//b]"), &rec);
  std::vector<std::string> got;
  for (const Path& p : paths) got.push_back(ToString(p));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, std::vector<std::string>({"//a", "//a//b"}));
}

TEST_F(ExpansionTest, UnknownLabelKeptVerbatim) {
  auto got = ExpandStrings("//patient[.//unknownelem]");
  EXPECT_EQ(got, std::vector<std::string>(
                     {"//patient", "//patient//unknownelem"}));
}

TEST_F(ExpansionTest, WildcardStepsSurvive) {
  auto got = ExpandStrings("//patient/*");
  EXPECT_EQ(got,
            std::vector<std::string>({"//patient", "//patient/*"}));
}

TEST_F(ExpansionTest, LeadingDescendantNeverRewritten) {
  // Even with schema rewriting on, the leading // stays: //bill must not
  // blow up into all root-to-bill chains.
  auto got = ExpandStrings("//bill");
  EXPECT_EQ(got, std::vector<std::string>({"//bill"}));
}

}  // namespace
}  // namespace xmlac::xpath
