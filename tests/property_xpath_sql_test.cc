// Property suite: the XPath-to-SQL translation agrees with the tree
// evaluator on randomly generated queries over randomly generated
// documents — the oracle property the whole relational pipeline rests on.

#include <gtest/gtest.h>

#include <algorithm>

#include "reldb/executor.h"
#include "shred/shredder.h"
#include "shred/xpath_to_sql.h"
#include "testing/generators.h"
#include "workload/hospital.h"
#include "workload/xmark.h"
#include "xpath/evaluator.h"

namespace xmlac::shred {
namespace {

struct Corpus {
  xml::Document doc;
  std::unique_ptr<ShredMapping> mapping;
  std::unique_ptr<reldb::Catalog> catalog;
  std::unique_ptr<reldb::Executor> exec;
};

Corpus MakeXmarkCorpus(double factor, uint64_t seed,
                       reldb::StorageKind kind) {
  Corpus c;
  workload::XmarkGenerator gen;
  workload::XmarkOptions opt;
  opt.factor = factor;
  opt.seed = seed;
  c.doc = gen.Generate(opt);
  auto dtd = workload::XmarkGenerator::ParseXmarkDtd();
  EXPECT_TRUE(dtd.ok());
  c.mapping = std::make_unique<ShredMapping>(*dtd);
  c.catalog = std::make_unique<reldb::Catalog>(kind);
  EXPECT_TRUE(c.mapping->CreateTables(c.catalog.get()).ok());
  EXPECT_TRUE(ShredToCatalog(c.doc, *c.mapping, c.catalog.get(), '-').ok());
  c.exec = std::make_unique<reldb::Executor>(c.catalog.get());
  return c;
}

std::vector<int64_t> TreeIds(const xpath::Path& p, const xml::Document& doc) {
  std::vector<int64_t> out;
  for (xml::NodeId id : xpath::Evaluate(p, doc)) {
    out.push_back(static_cast<int64_t>(id));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class XPathSqlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XPathSqlPropertyTest, TranslationAgreesWithEvaluator) {
  uint64_t seed = GetParam();
  Corpus c = MakeXmarkCorpus(0.01, seed,
                             seed % 2 == 0 ? reldb::StorageKind::kRowStore
                                           : reldb::StorageKind::kColumnStore);
  testing::RandomPathGenerator gen(c.doc, seed * 7919 + 1);
  for (int i = 0; i < 60; ++i) {
    xpath::Path p = gen.Next();
    auto tr = TranslateXPath(p, *c.mapping);
    if (!tr.ok() && tr.status().code() == StatusCode::kUnsupported) {
      continue;  // wildcard fan-out beyond the translator's branch budget
    }
    ASSERT_TRUE(tr.ok()) << tr.status() << " for " << xpath::ToString(p);
    std::vector<int64_t> sql_ids;
    if (!tr->empty) {
      auto rs = c.exec->ExecuteSelect(tr->query);
      ASSERT_TRUE(rs.ok()) << rs.status() << " for " << xpath::ToString(p);
      sql_ids = rs->IdColumn();
      std::sort(sql_ids.begin(), sql_ids.end());
    }
    EXPECT_EQ(sql_ids, TreeIds(p, c.doc)) << xpath::ToString(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathSqlPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// The same property on schemas from the shared instance generator
// (testing/generators.h) — random content-model shapes XMark and hospital
// never produce.  A failure names the seed; regenerate the instance with it.
class XPathSqlGeneratedPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XPathSqlGeneratedPropertyTest, TranslationAgreesWithEvaluator) {
  uint64_t seed = GetParam();
  testing::InstanceOptions opt;
  opt.seed = seed;
  testing::Instance instance = testing::GenerateInstance(opt);
  ShredMapping mapping(instance.dtd);
  reldb::Catalog catalog(seed % 2 == 0 ? reldb::StorageKind::kRowStore
                                       : reldb::StorageKind::kColumnStore);
  ASSERT_TRUE(mapping.CreateTables(&catalog).ok());
  ASSERT_TRUE(ShredToCatalog(instance.doc, mapping, &catalog, '-').ok());
  reldb::Executor exec(&catalog);

  testing::RandomPathGenerator gen(instance.doc, seed * 7919 + 5);
  for (int i = 0; i < 40; ++i) {
    xpath::Path p = gen.Next();
    auto tr = TranslateXPath(p, mapping);
    if (!tr.ok() && tr.status().code() == StatusCode::kUnsupported) {
      continue;
    }
    ASSERT_TRUE(tr.ok()) << tr.status() << " for " << xpath::ToString(p)
                         << " (seed " << seed << ")";
    std::vector<int64_t> sql_ids;
    if (!tr->empty) {
      auto rs = exec.ExecuteSelect(tr->query);
      ASSERT_TRUE(rs.ok()) << rs.status() << " for " << xpath::ToString(p);
      sql_ids = rs->IdColumn();
      std::sort(sql_ids.begin(), sql_ids.end());
    }
    EXPECT_EQ(sql_ids, TreeIds(p, instance.doc))
        << xpath::ToString(p) << " (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XPathSqlGeneratedPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// Same property on the hospital domain, whose schema has choice content
// models and shared labels (name under patient/nurse/doctor).
TEST(XPathSqlHospitalPropertyTest, TranslationAgreesWithEvaluator) {
  workload::HospitalGenerator gen;
  workload::HospitalOptions opt;
  opt.departments = 3;
  opt.patients_per_department = 25;
  xml::Document doc = gen.Generate(opt);
  auto dtd = workload::HospitalGenerator::ParseHospitalDtd();
  ASSERT_TRUE(dtd.ok());
  ShredMapping mapping(*dtd);
  reldb::Catalog catalog(reldb::StorageKind::kRowStore);
  ASSERT_TRUE(mapping.CreateTables(&catalog).ok());
  ASSERT_TRUE(ShredToCatalog(doc, mapping, &catalog, '-').ok());
  reldb::Executor exec(&catalog);

  testing::RandomPathGenerator paths(doc, 424242);
  for (int i = 0; i < 120; ++i) {
    xpath::Path p = paths.Next();
    auto tr = TranslateXPath(p, mapping);
    if (!tr.ok() && tr.status().code() == StatusCode::kUnsupported) {
      continue;
    }
    ASSERT_TRUE(tr.ok()) << tr.status() << " for " << xpath::ToString(p);
    std::vector<int64_t> sql_ids;
    if (!tr->empty) {
      auto rs = exec.ExecuteSelect(tr->query);
      ASSERT_TRUE(rs.ok()) << rs.status();
      sql_ids = rs->IdColumn();
      std::sort(sql_ids.begin(), sql_ids.end());
    }
    EXPECT_EQ(sql_ids, TreeIds(p, doc)) << xpath::ToString(p);
  }
}

}  // namespace
}  // namespace xmlac::shred
