#include "engine/onthefly.h"

#include <gtest/gtest.h>

#include "engine/access_controller.h"
#include "engine/native_backend.h"
#include "tests/testdata.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

class OnTheFlyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(*doc);
    auto p = policy::ParsePolicy(testdata::kHospitalPolicy);
    ASSERT_TRUE(p.ok());
    requester_ = std::make_unique<OnTheFlyRequester>(*p);
  }

  Result<RequestOutcome> Ask(std::string_view q) {
    auto path = xpath::ParsePath(q);
    EXPECT_TRUE(path.ok());
    return requester_->Request(doc_, *path);
  }

  xml::Document doc_;
  std::unique_ptr<OnTheFlyRequester> requester_;
};

TEST_F(OnTheFlyTest, MatchesMaterializedOutcomes) {
  // Same controller-level answers as the annotated store gives.
  AccessController ac(std::make_unique<NativeXmlBackend>());
  ASSERT_TRUE(ac.Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
  ASSERT_TRUE(ac.SetPolicy(testdata::kHospitalPolicy).ok());
  for (const char* q :
       {"//patient", "//patient/name", "//regular", "//doctor",
        "//experimental", "//patient[psn=\"099\"]", "//nosuchlabel",
        "//bill", "//treatment"}) {
    auto mat = ac.Query(q);
    auto otf = Ask(q);
    EXPECT_EQ(mat.ok(), otf.ok()) << q;
    if (mat.ok() && otf.ok()) {
      EXPECT_EQ(mat->ids, otf->ids) << q;
      EXPECT_EQ(mat->accessible, otf->accessible) << q;
    }
  }
}

TEST_F(OnTheFlyTest, NoStateToInvalidate) {
  // Mutate the document directly: the next request reflects it without any
  // re-annotation step — the baseline's one advantage.
  ASSERT_FALSE(Ask("//patient").ok());
  auto treatments = xpath::Evaluate(*xpath::ParsePath("//treatment"), doc_);
  for (xml::NodeId t : treatments) doc_.DeleteSubtree(t);
  auto r = Ask("//patient");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ids.size(), 3u);
}

TEST_F(OnTheFlyTest, DeniedCarriesDiagnostics) {
  auto r = Ask("//patient");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAccessDenied);
  EXPECT_NE(r.status().message().find("2 of 3"), std::string::npos)
      << r.status();
}

TEST_F(OnTheFlyTest, EmptySelectionGranted) {
  auto r = Ask("//nosuchlabel");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->granted);
  EXPECT_EQ(r->selected, 0u);
}

}  // namespace
}  // namespace xmlac::engine
