#include "policy/optimizer.h"

#include <gtest/gtest.h>

#include "policy/semantics.h"
#include "tests/testdata.h"
#include "xml/parser.h"
#include "xpath/ast.h"

namespace xmlac::policy {
namespace {

std::vector<std::string> RuleIds(const Policy& p) {
  std::vector<std::string> out;
  for (const Rule& r : p.rules()) out.push_back(r.id);
  return out;
}

// The paper's Table 1 -> Table 3: R4, R7, R8 eliminated; R1, R2, R3, R5, R6
// survive (R3 ⊑ R1 but opposite effects).
TEST(OptimizerTest, HospitalPolicyMatchesTable3) {
  auto p = ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  OptimizerStats stats;
  Policy opt = EliminateRedundantRules(*p, &stats);
  EXPECT_EQ(RuleIds(opt),
            (std::vector<std::string>{"R1", "R2", "R3", "R5", "R6"}));
  EXPECT_EQ(stats.removed, 3u);
  EXPECT_GT(stats.containment_tests, 0u);
  EXPECT_EQ(opt.default_semantics(), p->default_semantics());
  EXPECT_EQ(opt.conflict_resolution(), p->conflict_resolution());
}

TEST(OptimizerTest, OptimizedPolicyPreservesSemantics) {
  auto p = ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  auto doc = xml::ParseDocument(testdata::kHospitalDoc);
  ASSERT_TRUE(doc.ok());
  Policy opt = EliminateRedundantRules(*p);
  EXPECT_EQ(AccessibleNodes(*p, *doc), AccessibleNodes(opt, *doc));
}

TEST(OptimizerTest, OppositeEffectsNeverEliminate) {
  auto p = ParsePolicy("allow //patient\ndeny //patient[treatment]\n");
  ASSERT_TRUE(p.ok());
  Policy opt = EliminateRedundantRules(*p);
  EXPECT_EQ(opt.size(), 2u);
}

TEST(OptimizerTest, EquivalentRulesKeepOne) {
  auto p = ParsePolicy("allow //a[b][c]\nallow //a[c][b]\n");
  ASSERT_TRUE(p.ok());
  Policy opt = EliminateRedundantRules(*p);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.rules()[0].id, "R1");  // earlier rule survives
}

TEST(OptimizerTest, IdenticalRulesKeepOne) {
  auto p = ParsePolicy("allow //a\nallow //a\nallow //a\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(EliminateRedundantRules(*p).size(), 1u);
}

TEST(OptimizerTest, ChainOfContainments) {
  auto p = ParsePolicy(
      "allow //a\nallow //a[b]\nallow //a[b][c]\nallow //a[b][c][d]\n");
  ASSERT_TRUE(p.ok());
  Policy opt = EliminateRedundantRules(*p);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(xpath::ToString(opt.rules()[0].resource), "//a");
}

TEST(OptimizerTest, DisjointRulesUntouched) {
  auto p = ParsePolicy("allow //a\nallow //b\ndeny //c\ndeny //d\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(EliminateRedundantRules(*p).size(), 4u);
}

TEST(OptimizerTest, EmptyPolicy) {
  Policy p;
  EXPECT_EQ(EliminateRedundantRules(p).size(), 0u);
}

TEST(OptimizerTest, WildcardContainerAbsorbs) {
  auto p = ParsePolicy("allow //patient/*\nallow //patient/name\n");
  ASSERT_TRUE(p.ok());
  Policy opt = EliminateRedundantRules(*p);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_EQ(xpath::ToString(opt.rules()[0].resource), "//patient/*");
}

}  // namespace
}  // namespace xmlac::policy
