#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace xmlac::xml {
namespace {

Document Build() {
  Document doc;
  NodeId root = doc.CreateRoot("r");
  doc.SetAttribute(root, "version", "1");
  NodeId a = doc.CreateElement(root, "a");
  doc.CreateText(a, "text & <markup>");
  doc.CreateElement(root, "b");
  return doc;
}

TEST(SerializerTest, CompactForm) {
  Document doc = Build();
  EXPECT_EQ(Serialize(doc),
            "<r version=\"1\"><a>text &amp; &lt;markup&gt;</a><b/></r>");
}

TEST(SerializerTest, EmptyElementUsesSelfClosing) {
  Document doc;
  doc.CreateRoot("lonely");
  EXPECT_EQ(Serialize(doc), "<lonely/>");
}

TEST(SerializerTest, Declaration) {
  Document doc;
  doc.CreateRoot("x");
  SerializeOptions opt;
  opt.declaration = true;
  EXPECT_EQ(Serialize(doc, opt), "<?xml version=\"1.0\"?><x/>");
}

TEST(SerializerTest, IndentedFormParsesBack) {
  Document doc = Build();
  SerializeOptions opt;
  opt.indent = true;
  std::string pretty = Serialize(doc, opt);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto r = ParseDocument(pretty);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Serialize(*r), Serialize(doc));
}

TEST(SerializerTest, DeletedNodesOmitted) {
  Document doc = Build();
  // Delete <a>.
  NodeId a = doc.node(doc.root()).children[0];
  doc.DeleteSubtree(a);
  EXPECT_EQ(Serialize(doc), "<r version=\"1\"><b/></r>");
}

TEST(SerializerTest, SubtreeSerialization) {
  Document doc = Build();
  NodeId a = doc.node(doc.root()).children[0];
  EXPECT_EQ(SerializeSubtree(doc, a), "<a>text &amp; &lt;markup&gt;</a>");
}

TEST(SerializerTest, AttributeValuesEscaped) {
  Document doc;
  NodeId root = doc.CreateRoot("x");
  doc.SetAttribute(root, "q", "a\"b<c&");
  std::string out = Serialize(doc);
  EXPECT_EQ(out, "<x q=\"a&quot;b&lt;c&amp;\"/>");
  auto r = ParseDocument(out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->GetAttribute(r->root(), "q"), "a\"b<c&");
}

TEST(SerializerTest, EmptyDocument) {
  Document doc;
  EXPECT_EQ(Serialize(doc), "");
}

}  // namespace
}  // namespace xmlac::xml
