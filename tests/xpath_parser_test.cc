#include "xpath/parser.h"

#include <gtest/gtest.h>

namespace xmlac::xpath {
namespace {

Path MustParse(std::string_view text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : Path{};
}

TEST(XPathParserTest, SimpleAbsolutePath) {
  Path p = MustParse("/hospital/dept");
  EXPECT_TRUE(p.absolute);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[0].label, "hospital");
  EXPECT_EQ(p.steps[1].label, "dept");
}

TEST(XPathParserTest, DescendantAxis) {
  Path p = MustParse("//patient");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
}

TEST(XPathParserTest, MixedAxes) {
  Path p = MustParse("/a//b/c//d");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, Axis::kChild);
  EXPECT_EQ(p.steps[3].axis, Axis::kDescendant);
}

TEST(XPathParserTest, Wildcard) {
  Path p = MustParse("/a/*/b");
  EXPECT_TRUE(p.steps[1].is_wildcard());
}

TEST(XPathParserTest, ExistencePredicate) {
  Path p = MustParse("//patient[treatment]");
  ASSERT_EQ(p.steps.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  const Predicate& pred = p.steps[0].predicates[0];
  EXPECT_FALSE(pred.has_comparison());
  ASSERT_EQ(pred.path.steps.size(), 1u);
  EXPECT_EQ(pred.path.steps[0].label, "treatment");
  EXPECT_EQ(pred.path.steps[0].axis, Axis::kChild);
}

TEST(XPathParserTest, DescendantPredicate) {
  Path p = MustParse("//patient[.//experimental]");
  const Predicate& pred = p.steps[0].predicates[0];
  ASSERT_EQ(pred.path.steps.size(), 1u);
  EXPECT_EQ(pred.path.steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(pred.path.steps[0].label, "experimental");
}

TEST(XPathParserTest, EqualityPredicate) {
  Path p = MustParse("//regular[med=\"celecoxib\"]");
  const Predicate& pred = p.steps[0].predicates[0];
  ASSERT_TRUE(pred.has_comparison());
  EXPECT_EQ(*pred.op, CmpOp::kEq);
  EXPECT_EQ(pred.value, "celecoxib");
}

TEST(XPathParserTest, NumericComparisonPredicate) {
  Path p = MustParse("//regular[bill > 1000]");
  const Predicate& pred = p.steps[0].predicates[0];
  ASSERT_TRUE(pred.has_comparison());
  EXPECT_EQ(*pred.op, CmpOp::kGt);
  EXPECT_EQ(pred.value, "1000");
}

TEST(XPathParserTest, AllComparisonOperators) {
  EXPECT_EQ(*MustParse("//a[b=1]").steps[0].predicates[0].op, CmpOp::kEq);
  EXPECT_EQ(*MustParse("//a[b!=1]").steps[0].predicates[0].op, CmpOp::kNe);
  EXPECT_EQ(*MustParse("//a[b<1]").steps[0].predicates[0].op, CmpOp::kLt);
  EXPECT_EQ(*MustParse("//a[b<=1]").steps[0].predicates[0].op, CmpOp::kLe);
  EXPECT_EQ(*MustParse("//a[b>1]").steps[0].predicates[0].op, CmpOp::kGt);
  EXPECT_EQ(*MustParse("//a[b>=1]").steps[0].predicates[0].op, CmpOp::kGe);
}

TEST(XPathParserTest, Conjunction) {
  Path p = MustParse("//a[b and c/d and e=\"5\"]");
  ASSERT_EQ(p.steps[0].predicates.size(), 3u);
  EXPECT_EQ(p.steps[0].predicates[1].path.steps.size(), 2u);
  EXPECT_TRUE(p.steps[0].predicates[2].has_comparison());
}

TEST(XPathParserTest, MultiplePredicateBrackets) {
  Path p = MustParse("//a[b][c]");
  ASSERT_EQ(p.steps[0].predicates.size(), 2u);
}

TEST(XPathParserTest, NestedPredicates) {
  Path p = MustParse("//a[b[c=\"x\"]]");
  const Predicate& outer = p.steps[0].predicates[0];
  ASSERT_EQ(outer.path.steps.size(), 1u);
  ASSERT_EQ(outer.path.steps[0].predicates.size(), 1u);
  EXPECT_TRUE(outer.path.steps[0].predicates[0].has_comparison());
}

TEST(XPathParserTest, SelfComparison) {
  Path p = MustParse("//bill[. > 1000]");
  const Predicate& pred = p.steps[0].predicates[0];
  EXPECT_TRUE(pred.path.empty());
  EXPECT_EQ(*pred.op, CmpOp::kGt);
}

TEST(XPathParserTest, SingleQuotedConstant) {
  Path p = MustParse("//a[b='v w']");
  EXPECT_EQ(p.steps[0].predicates[0].value, "v w");
}

TEST(XPathParserTest, RelativePathParsing) {
  auto r = ParseRelativePath(".//a/b");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->absolute);
  ASSERT_EQ(r->steps.size(), 2u);
  EXPECT_EQ(r->steps[0].axis, Axis::kDescendant);
}

TEST(XPathParserTest, RejectsRelativeAtTopLevel) {
  EXPECT_FALSE(ParsePath("patient/name").ok());
}

TEST(XPathParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParsePath("").ok());
  EXPECT_FALSE(ParsePath("/").ok());
  EXPECT_FALSE(ParsePath("//a[").ok());
  EXPECT_FALSE(ParsePath("//a[]").ok());
  EXPECT_FALSE(ParsePath("//a]").ok());
  EXPECT_FALSE(ParsePath("//a[b=]").ok());
  EXPECT_FALSE(ParsePath("//a[.]").ok());
  EXPECT_FALSE(ParsePath("//a[b='x]").ok());
  EXPECT_FALSE(ParsePath("/a/").ok());
}

TEST(XPathParserTest, ToStringRoundTrip) {
  const char* cases[] = {
      "/hospital/dept",
      "//patient",
      "//patient[treatment]",
      "//patient[.//experimental]",
      "//patient[treatment]/name",
      "/a//b/c",
      "/a/*/b",
      "//a[b and c]",
  };
  for (const char* text : cases) {
    Path p = MustParse(text);
    std::string printed = ToString(p);
    Path p2 = MustParse(printed);
    EXPECT_TRUE(StructurallyEqual(p, p2)) << text << " vs " << printed;
  }
}

TEST(XPathParserTest, ToStringComparison) {
  Path p = MustParse("//regular[med=\"celecoxib\"]");
  EXPECT_EQ(ToString(p), "//regular[med=\"celecoxib\"]");
}

TEST(XPathParserTest, AstHelpers) {
  EXPECT_TRUE(UsesDescendantAxis(MustParse("//a")));
  EXPECT_FALSE(UsesDescendantAxis(MustParse("/a/b")));
  EXPECT_TRUE(UsesDescendantAxis(MustParse("/a[.//b]")));
  EXPECT_TRUE(UsesWildcard(MustParse("/a/*")));
  EXPECT_FALSE(UsesWildcard(MustParse("/a/b")));
  EXPECT_TRUE(UsesPredicates(MustParse("/a[b]")));
  EXPECT_FALSE(UsesPredicates(MustParse("/a/b")));
  EXPECT_EQ(TotalSteps(MustParse("/a[b/c]/d")), 4u);
}

}  // namespace
}  // namespace xmlac::xpath
