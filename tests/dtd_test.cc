#include "xml/dtd.h"

#include <gtest/gtest.h>

namespace xmlac::xml {
namespace {

// The paper's hospital DTD (Fig. 1).
constexpr char kHospitalDtd[] = R"(
<!ELEMENT hospital (dept+)>
<!ELEMENT dept (patients, staffinfo)>
<!ELEMENT patients (patient*)>
<!ELEMENT staffinfo (staff*)>
<!ELEMENT patient (psn, name, treatment?)>
<!ELEMENT treatment (regular? | experimental?)>
<!ELEMENT regular (med, bill)>
<!ELEMENT experimental (test, bill)>
<!ELEMENT staff (nurse | doctor)>
<!ELEMENT nurse (sid, name, phone)>
<!ELEMENT doctor (sid, name, phone)>
<!ELEMENT psn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT med (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT test (#PCDATA)>
<!ELEMENT sid (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
)";

TEST(DtdTest, ParsesHospitalDtd) {
  auto r = ParseDtd(kHospitalDtd);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->root_name(), "hospital");
  EXPECT_EQ(r->elements().size(), 18u);
  EXPECT_TRUE(r->HasElement("patient"));
  EXPECT_FALSE(r->HasElement("nonexistent"));
}

TEST(DtdTest, OccurrenceIndicators) {
  auto r = ParseDtd("<!ELEMENT a (b+, c?, d*, e)>");
  ASSERT_TRUE(r.ok()) << r.status();
  const ElementDecl* a = r->Lookup("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->content.kind, ParticleKind::kSequence);
  ASSERT_EQ(a->content.children.size(), 4u);
  EXPECT_EQ(a->content.children[0].occurrence, Occurrence::kPlus);
  EXPECT_EQ(a->content.children[1].occurrence, Occurrence::kOptional);
  EXPECT_EQ(a->content.children[2].occurrence, Occurrence::kStar);
  EXPECT_EQ(a->content.children[3].occurrence, Occurrence::kOne);
}

TEST(DtdTest, ChoiceContent) {
  auto r = ParseDtd("<!ELEMENT s (nurse | doctor)>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Lookup("s")->content.kind, ParticleKind::kChoice);
}

TEST(DtdTest, NestedGroups) {
  auto r = ParseDtd("<!ELEMENT a ((b, c) | (d, e))*>");
  ASSERT_TRUE(r.ok()) << r.status();
  const Particle& content = r->Lookup("a")->content;
  EXPECT_EQ(content.kind, ParticleKind::kChoice);
  EXPECT_EQ(content.occurrence, Occurrence::kStar);
  ASSERT_EQ(content.children.size(), 2u);
  EXPECT_EQ(content.children[0].kind, ParticleKind::kSequence);
}

TEST(DtdTest, EmptyAndAny) {
  auto r = ParseDtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Lookup("a")->content.kind, ParticleKind::kEmpty);
  EXPECT_EQ(r->Lookup("b")->content.kind, ParticleKind::kAny);
}

TEST(DtdTest, MixedContent) {
  auto r = ParseDtd("<!ELEMENT p (#PCDATA | em | strong)*>");
  ASSERT_TRUE(r.ok()) << r.status();
  const Particle& content = r->Lookup("p")->content;
  EXPECT_EQ(content.kind, ParticleKind::kChoice);
  EXPECT_EQ(content.children[0].kind, ParticleKind::kPcdata);
}

TEST(DtdTest, PcdataOnly) {
  auto r = ParseDtd("<!ELEMENT name (#PCDATA)>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Lookup("name")->content.kind, ParticleKind::kPcdata);
}

TEST(DtdTest, AttlistAndCommentsSkipped) {
  auto r = ParseDtd(R"(
    <!-- hospital schema -->
    <!ELEMENT a (b)>
    <!ATTLIST a id ID #REQUIRED>
    <!ELEMENT b (#PCDATA)>
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->elements().size(), 2u);
}

TEST(DtdTest, DuplicateElementRejected) {
  auto r = ParseDtd("<!ELEMENT a (b)><!ELEMENT a (c)>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(DtdTest, EmptyDtdRejected) {
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("   <!-- nothing -->  ").ok());
}

TEST(DtdTest, ParticleToStringRoundTrip) {
  auto r = ParseDtd("<!ELEMENT a (b+, (c | d)?, e*)>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ParticleToString(r->Lookup("a")->content),
            "(b+, (c | d)?, e*)");
}

}  // namespace
}  // namespace xmlac::xml
