// COUNT(*), ORDER BY and LIMIT — the SQL surface beyond what the shredding
// pipeline itself emits.

#include <gtest/gtest.h>

#include "reldb/executor.h"

namespace xmlac::reldb {
namespace {

class SqlExtensionsTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  SqlExtensionsTest() : catalog_(GetParam()), exec_(&catalog_) {}

  void SetUp() override {
    ASSERT_TRUE(exec_.Run(R"(
      CREATE TABLE emp (id INT, dept TEXT, salary INT);
      INSERT INTO emp VALUES (1, 'icu', 900);
      INSERT INTO emp VALUES (2, 'er', 700);
      INSERT INTO emp VALUES (3, 'icu', 1200);
      INSERT INTO emp VALUES (4, 'lab', 700);
      INSERT INTO emp VALUES (5, 'er', 1100);
    )").ok());
  }

  ResultSet MustQuery(std::string_view sql) {
    auto r = exec_.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status() << " for " << sql;
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  Catalog catalog_;
  Executor exec_;
};

TEST_P(SqlExtensionsTest, CountStar) {
  ResultSet rs = MustQuery("SELECT COUNT(*) FROM emp");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 5);
  EXPECT_EQ(rs.columns[0], "count");
}

TEST_P(SqlExtensionsTest, CountStarWithWhere) {
  ResultSet rs = MustQuery("SELECT COUNT(*) FROM emp WHERE dept = 'icu'");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
  rs = MustQuery("SELECT COUNT(*) FROM emp WHERE salary > 2000");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
}

TEST_P(SqlExtensionsTest, CountStarOverJoin) {
  ResultSet rs = MustQuery(
      "SELECT COUNT(*) FROM emp a, emp b WHERE a.dept = b.dept");
  // icu:2x2 + er:2x2 + lab:1 = 9.
  EXPECT_EQ(rs.rows[0][0].AsInt(), 9);
}

TEST_P(SqlExtensionsTest, OrderByAscendingDefault) {
  ResultSet rs = MustQuery("SELECT id FROM emp ORDER BY salary");
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);  // 700 (id 2 before id 4: stable)
  EXPECT_EQ(rs.rows[1][0].AsInt(), 4);
  EXPECT_EQ(rs.rows[4][0].AsInt(), 3);  // 1200
}

TEST_P(SqlExtensionsTest, OrderByDescending) {
  ResultSet rs = MustQuery("SELECT id FROM emp ORDER BY salary DESC");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs.rows[4][0].AsInt(), 4);  // stable: 700s keep insert order
}

TEST_P(SqlExtensionsTest, OrderByMultipleKeys) {
  ResultSet rs = MustQuery(
      "SELECT id FROM emp ORDER BY dept ASC, salary DESC");
  // er(1100,700), icu(1200,900), lab(700).
  std::vector<int64_t> got;
  for (const Row& r : rs.rows) got.push_back(r[0].AsInt());
  EXPECT_EQ(got, (std::vector<int64_t>{5, 2, 3, 1, 4}));
}

TEST_P(SqlExtensionsTest, OrderByUnselectedColumn) {
  // The sort key need not be projected.
  ResultSet rs = MustQuery("SELECT dept FROM emp ORDER BY id DESC LIMIT 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "er");
}

TEST_P(SqlExtensionsTest, Limit) {
  EXPECT_EQ(MustQuery("SELECT id FROM emp LIMIT 3").rows.size(), 3u);
  EXPECT_EQ(MustQuery("SELECT id FROM emp LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(MustQuery("SELECT id FROM emp LIMIT 99").rows.size(), 5u);
}

TEST_P(SqlExtensionsTest, TopKPattern) {
  ResultSet rs = MustQuery(
      "SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 1200);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 1100);
}

TEST_P(SqlExtensionsTest, DistinctOrderedLimited) {
  ResultSet rs = MustQuery(
      "SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "er");
  EXPECT_EQ(rs.rows[1][0].AsString(), "icu");
}

TEST_P(SqlExtensionsTest, ToSqlRoundTrip) {
  const char* sql =
      "SELECT DISTINCT e.dept FROM emp e WHERE e.salary >= 700 "
      "ORDER BY e.dept DESC LIMIT 2";
  auto st = ParseSql(sql);
  ASSERT_TRUE(st.ok()) << st.status();
  std::string printed = st->select.ToSql();
  auto st2 = ParseSql(printed);
  ASSERT_TRUE(st2.ok()) << st2.status() << " for " << printed;
  EXPECT_EQ(st2->select.ToSql(), printed);
  auto count_sql = ParseSql("SELECT COUNT(*) FROM emp WHERE dept = 'er'");
  ASSERT_TRUE(count_sql.ok());
  EXPECT_EQ(count_sql->select.ToSql(),
            "SELECT COUNT(*) FROM emp WHERE dept = 'er'");
}

TEST_P(SqlExtensionsTest, Rejections) {
  EXPECT_FALSE(exec_.Query("SELECT COUNT(* FROM emp").ok());
  EXPECT_FALSE(exec_.Query("SELECT COUNT(id) FROM emp").ok());
  EXPECT_FALSE(exec_.Query("SELECT id FROM emp ORDER salary").ok());
  EXPECT_FALSE(exec_.Query("SELECT id FROM emp LIMIT -1").ok());
  EXPECT_FALSE(exec_.Query("SELECT id FROM emp LIMIT many").ok());
  EXPECT_FALSE(exec_.Query("SELECT id FROM emp ORDER BY nosuch").ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, SqlExtensionsTest,
                         ::testing::Values(StorageKind::kRowStore,
                                           StorageKind::kColumnStore),
                         [](const auto& info) {
                           return info.param == StorageKind::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

}  // namespace
}  // namespace xmlac::reldb
