#include "policy/semantics.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::policy {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(d.ok()) << d.status();
    doc_ = std::move(*d);
    auto p = ParsePolicy(testdata::kHospitalPolicy);
    ASSERT_TRUE(p.ok()) << p.status();
    policy_ = std::move(*p);
  }

  xml::NodeId Single(std::string_view expr) {
    auto r = xpath::Evaluate(*xpath::ParsePath(expr), doc_);
    EXPECT_EQ(r.size(), 1u) << expr;
    return r.empty() ? xml::kInvalidNode : r[0];
  }

  std::vector<xml::NodeId> Eval(std::string_view expr) {
    return xpath::Evaluate(*xpath::ParsePath(expr), doc_);
  }

  xml::Document doc_;
  Policy policy_;
};

// The paper's Fig. 2 annotation: only the third patient (no treatment) is
// accessible among patients; all patient names are accessible; the regular
// treatment node is accessible.
TEST_F(SemanticsTest, HospitalPolicyAccessibleNodes) {
  NodeSet acc = AccessibleNodes(policy_, doc_);
  // Patient 099 (joy smith) accessible.
  EXPECT_TRUE(acc.count(Single("//patient[psn=\"099\"]")));
  // Patients with treatment are not.
  EXPECT_FALSE(acc.count(Single("//patient[psn=\"033\"]")));
  EXPECT_FALSE(acc.count(Single("//patient[psn=\"042\"]")));
  // All patient names accessible (R2).
  for (xml::NodeId id : Eval("//patient/name")) EXPECT_TRUE(acc.count(id));
  // Staff names are not in the scope of any rule: default deny.
  for (xml::NodeId id : Eval("//staff//name")) EXPECT_FALSE(acc.count(id));
  // regular accessible (R6), experimental not.
  EXPECT_TRUE(acc.count(Single("//regular")));
  EXPECT_FALSE(acc.count(Single("//experimental")));
  // Unruled structure nodes are denied by default.
  EXPECT_FALSE(acc.count(Single("//patients")));
  EXPECT_FALSE(acc.count(doc_.root()));
}

TEST_F(SemanticsTest, DenyDefaultAllowOverrides) {
  // (ds=-, cr=+): accessible = [[A]] — denies are ignored on conflict.
  policy_.set_conflict_resolution(ConflictResolution::kAllowOverrides);
  NodeSet acc = AccessibleNodes(policy_, doc_);
  // Now every patient is accessible (R1 wins over R3/R5).
  for (xml::NodeId id : Eval("//patient")) EXPECT_TRUE(acc.count(id));
}

TEST_F(SemanticsTest, AllowDefaultDenyOverrides) {
  // (ds=+, cr=-): accessible = U − [[D]].
  policy_.set_default_semantics(DefaultSemantics::kAllow);
  NodeSet acc = AccessibleNodes(policy_, doc_);
  // Structure nodes now accessible.
  EXPECT_TRUE(acc.count(Single("//patients")));
  EXPECT_TRUE(acc.count(doc_.root()));
  // Denied: patients with treatment.
  EXPECT_FALSE(acc.count(Single("//patient[psn=\"033\"]")));
  EXPECT_TRUE(acc.count(Single("//patient[psn=\"099\"]")));
}

TEST_F(SemanticsTest, AllowDefaultAllowOverrides) {
  // (ds=+, cr=+): accessible = U − ([[D]] − [[A]]).
  policy_.set_default_semantics(DefaultSemantics::kAllow);
  policy_.set_conflict_resolution(ConflictResolution::kAllowOverrides);
  NodeSet acc = AccessibleNodes(policy_, doc_);
  // Patients with treatment are in D but also in A (R1): accessible.
  EXPECT_TRUE(acc.count(Single("//patient[psn=\"033\"]")));
  EXPECT_TRUE(acc.count(Single("//patient[psn=\"042\"]")));
}

TEST_F(SemanticsTest, EmptyPolicy) {
  Policy empty(DefaultSemantics::kDeny, ConflictResolution::kDenyOverrides);
  EXPECT_TRUE(AccessibleNodes(empty, doc_).empty());
  Policy allow_all(DefaultSemantics::kAllow,
                   ConflictResolution::kDenyOverrides);
  EXPECT_EQ(AccessibleNodes(allow_all, doc_).size(),
            doc_.AllElements().size());
}

TEST(PlanForTest, MatchesFigure5) {
  // ds = deny: mark '+' on grants [except denies].
  AnnotationPlan p =
      PlanFor(DefaultSemantics::kDeny, ConflictResolution::kDenyOverrides);
  EXPECT_EQ(p.mark, Effect::kAllow);
  EXPECT_EQ(p.combine, CombineOp::kGrantsExceptDenies);
  p = PlanFor(DefaultSemantics::kDeny, ConflictResolution::kAllowOverrides);
  EXPECT_EQ(p.mark, Effect::kAllow);
  EXPECT_EQ(p.combine, CombineOp::kGrants);
  // ds = allow: mark '-' on denies [except grants].
  p = PlanFor(DefaultSemantics::kAllow, ConflictResolution::kDenyOverrides);
  EXPECT_EQ(p.mark, Effect::kDeny);
  EXPECT_EQ(p.combine, CombineOp::kDenies);
  p = PlanFor(DefaultSemantics::kAllow, ConflictResolution::kAllowOverrides);
  EXPECT_EQ(p.mark, Effect::kDeny);
  EXPECT_EQ(p.combine, CombineOp::kDeniesExceptGrants);
}

TEST(CombineTest, SetAlgebra) {
  NodeSet grants = {1, 2, 3};
  NodeSet denies = {2, 3, 4};
  EXPECT_EQ(Combine(CombineOp::kGrants, grants, denies), grants);
  EXPECT_EQ(Combine(CombineOp::kDenies, grants, denies), denies);
  EXPECT_EQ(Combine(CombineOp::kGrantsExceptDenies, grants, denies),
            (NodeSet{1}));
  EXPECT_EQ(Combine(CombineOp::kDeniesExceptGrants, grants, denies),
            (NodeSet{4}));
}

// Annotation plan must agree with Table 2 ground truth for the nodes whose
// sign differs from the default.
TEST_F(SemanticsTest, PlanConsistentWithGroundTruth) {
  for (auto ds : {DefaultSemantics::kAllow, DefaultSemantics::kDeny}) {
    for (auto cr : {ConflictResolution::kAllowOverrides,
                    ConflictResolution::kDenyOverrides}) {
      policy_.set_default_semantics(ds);
      policy_.set_conflict_resolution(cr);
      NodeSet truth = AccessibleNodes(policy_, doc_);
      NodeSet grants = ScopeUnion(policy_, policy_.PositiveRules(), doc_);
      NodeSet denies = ScopeUnion(policy_, policy_.NegativeRules(), doc_);
      AnnotationPlan plan = PlanFor(ds, cr);
      NodeSet marked = Combine(plan.combine, grants, denies);
      for (xml::NodeId id : doc_.AllElements()) {
        bool accessible = truth.count(id) > 0;
        bool is_marked = marked.count(id) > 0;
        if (plan.mark == Effect::kAllow) {
          // default deny: accessible iff marked.
          EXPECT_EQ(accessible, is_marked) << "node " << id;
        } else {
          EXPECT_EQ(accessible, !is_marked) << "node " << id;
        }
      }
    }
  }
}

}  // namespace
}  // namespace xmlac::policy
