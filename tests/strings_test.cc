#include "common/strings.h"

#include <gtest/gtest.h>

namespace xmlac {
namespace {

TEST(StrSplitTest, Basic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyPieces) {
  auto parts = StrSplit(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("x"), "x");
}

TEST(StrJoinTest, Basic) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5.0 MB");
}

TEST(XmlEscapeTest, EscapesSpecials) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

}  // namespace
}  // namespace xmlac
