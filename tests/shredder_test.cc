#include "shred/shredder.h"

#include <gtest/gtest.h>

#include "reldb/executor.h"
#include "shred/mapping.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"

namespace xmlac::shred {
namespace {

using reldb::Catalog;
using reldb::StorageKind;

class ShredderTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    mapping_ = std::make_unique<ShredMapping>(*dtd);
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(*doc);
    catalog_ = std::make_unique<Catalog>(GetParam());
    ASSERT_TRUE(mapping_->CreateTables(catalog_.get()).ok());
  }

  std::unique_ptr<ShredMapping> mapping_;
  xml::Document doc_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_P(ShredderTest, MappingShape) {
  // One table per label; value column only for #PCDATA elements.
  EXPECT_EQ(mapping_->tables().size(), 18u);
  EXPECT_TRUE(mapping_->HasTable("patient"));
  EXPECT_FALSE(mapping_->HasTable("nonexistent"));
  EXPECT_TRUE(mapping_->HasValueColumn("psn"));
  EXPECT_TRUE(mapping_->HasValueColumn("bill"));
  EXPECT_FALSE(mapping_->HasValueColumn("patient"));
  const reldb::Table* psn = catalog_->GetTable("psn");
  ASSERT_NE(psn, nullptr);
  EXPECT_EQ(psn->schema().num_columns(), 4u);  // id pid v s
  const reldb::Table* patient = catalog_->GetTable("patient");
  EXPECT_EQ(patient->schema().num_columns(), 3u);  // id pid s
}

TEST_P(ShredderTest, DdlScriptParses) {
  reldb::Catalog fresh(GetParam());
  reldb::Executor exec(&fresh);
  ASSERT_TRUE(exec.Run(mapping_->ToDdlScript()).ok());
  EXPECT_EQ(fresh.NumTables(), 18u);
}

TEST_P(ShredderTest, ShredProducesOneTuplePerElement) {
  auto stats = ShredToCatalog(doc_, *mapping_, catalog_.get(), '-');
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->tuples, doc_.AllElements().size());
  EXPECT_EQ(catalog_->TotalRows(), stats->tuples);
  // Three patients shredded into the patient table.
  EXPECT_EQ(catalog_->GetTable("patient")->AliveCount(), 3u);
  EXPECT_EQ(catalog_->GetTable("bill")->AliveCount(), 2u);
}

TEST_P(ShredderTest, UniversalIdsMatchTreeNodeIds) {
  ASSERT_TRUE(ShredToCatalog(doc_, *mapping_, catalog_.get(), '-').ok());
  const reldb::Table* patient = catalog_->GetTable("patient");
  // Every patient tuple's id must be a patient element's NodeId, and its pid
  // the parent's NodeId.
  for (reldb::RowIdx i = 0; i < patient->Capacity(); ++i) {
    ASSERT_TRUE(patient->IsAlive(i));
    auto id = static_cast<xml::NodeId>(patient->GetValue(i, 0).AsInt());
    auto pid = static_cast<xml::NodeId>(patient->GetValue(i, 1).AsInt());
    EXPECT_EQ(doc_.node(id).label, "patient");
    EXPECT_EQ(doc_.node(id).parent, pid);
  }
}

TEST_P(ShredderTest, ValuesAndSignsStored) {
  ASSERT_TRUE(ShredToCatalog(doc_, *mapping_, catalog_.get(), '-').ok());
  reldb::Executor exec(catalog_.get());
  auto rs = exec.Query("SELECT p.id FROM psn p WHERE p.v = '042'");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), 1u);
  rs = exec.Query("SELECT p.id FROM patient p WHERE p.s = '-'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);  // default sign applied everywhere
}

TEST_P(ShredderTest, RootTupleHasNullPid) {
  ASSERT_TRUE(ShredToCatalog(doc_, *mapping_, catalog_.get(), '-').ok());
  reldb::Executor exec(catalog_.get());
  auto rs = exec.Query("SELECT h.id FROM hospital h WHERE h.pid IS NULL");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
}

TEST_P(ShredderTest, SqlScriptRoundTrip) {
  auto script = ShredToSqlScript(doc_, *mapping_, '-');
  ASSERT_TRUE(script.ok()) << script.status();
  reldb::Catalog fresh(GetParam());
  reldb::Executor exec(&fresh);
  ASSERT_TRUE(exec.Run(mapping_->ToDdlScript()).ok());
  ASSERT_TRUE(exec.Run(*script).ok());
  EXPECT_EQ(fresh.TotalRows(), doc_.AllElements().size());
}

TEST_P(ShredderTest, SqlScriptEscapesQuotes) {
  xml::Document doc;
  auto root = doc.CreateRoot("name");
  doc.CreateText(root, "o'hara");
  auto dtd = xml::ParseDtd("<!ELEMENT name (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  ShredMapping m(*dtd);
  auto script = ShredToSqlScript(doc, m, '-');
  ASSERT_TRUE(script.ok());
  EXPECT_NE(script->find("'o''hara'"), std::string::npos);
  reldb::Catalog fresh(GetParam());
  reldb::Executor exec(&fresh);
  ASSERT_TRUE(exec.Run(m.ToDdlScript()).ok());
  ASSERT_TRUE(exec.Run(*script).ok());
}

TEST_P(ShredderTest, UnknownElementRejected) {
  xml::Document doc;
  auto root = doc.CreateRoot("hospital");
  doc.CreateElement(root, "alien");
  auto r = ShredToCatalog(doc, *mapping_, catalog_.get(), '-');
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(ShredderTest, IndexesCreatedOnIdAndPid) {
  const reldb::Table* t = catalog_->GetTable("patient");
  EXPECT_TRUE(t->HasIndex(*t->schema().ColumnIndex("id")));
  EXPECT_TRUE(t->HasIndex(*t->schema().ColumnIndex("pid")));
}

INSTANTIATE_TEST_SUITE_P(Engines, ShredderTest,
                         ::testing::Values(StorageKind::kRowStore,
                                           StorageKind::kColumnStore),
                         [](const auto& info) {
                           return info.param == StorageKind::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

}  // namespace
}  // namespace xmlac::shred
