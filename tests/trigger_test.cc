#include "policy/trigger.h"

#include <gtest/gtest.h>

#include "policy/optimizer.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xpath/parser.h"

namespace xmlac::policy {
namespace {

class TriggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    schema_ = std::make_unique<xml::SchemaGraph>(*dtd);
    auto p = ParsePolicy(testdata::kHospitalPolicy);
    ASSERT_TRUE(p.ok()) << p.status();
    // Table 3: the optimizer output the paper runs Trigger on.
    policy_ = EliminateRedundantRules(*p);
    ASSERT_EQ(policy_.size(), 5u);  // R1 R2 R3 R5 R6
    index_ = std::make_unique<TriggerIndex>(policy_, schema_.get());
  }

  std::vector<std::string> TriggeredIds(std::string_view update) {
    auto u = xpath::ParsePath(update);
    EXPECT_TRUE(u.ok()) << u.status();
    std::vector<std::string> out;
    for (size_t i : index_->Trigger(*u)) out.push_back(policy_.rules()[i].id);
    return out;
  }

  std::unique_ptr<xml::SchemaGraph> schema_;
  Policy policy_;
  std::unique_ptr<TriggerIndex> index_;
};

TEST_F(TriggerTest, DependencyGraphLinksOppositeEffects) {
  const DependencyGraph& g = index_->dependency_graph();
  // Rule order after optimization: 0=R1(+//patient) 1=R2(+//patient/name)
  // 2=R3(-//patient[treatment]) 3=R5(-//patient[.//experimental])
  // 4=R6(+//regular).
  // R3 ⊑ R1 with opposite effects -> adjacent; same for R5 ⊑ R1.
  auto n0 = g.Neighbours(0);
  EXPECT_NE(std::find(n0.begin(), n0.end(), 2u), n0.end());
  EXPECT_NE(std::find(n0.begin(), n0.end(), 3u), n0.end());
  // R2 (+names) is not containment-related to R3/R5 (different output label).
  EXPECT_TRUE(g.Neighbours(1).empty());
  // R6 (+regular) unrelated to the negative rules.
  EXPECT_TRUE(g.Neighbours(4).empty());
  // Closure: R3's depends include R1 and (via R1) R5.
  auto d2 = g.Depends(2);
  EXPECT_NE(std::find(d2.begin(), d2.end(), 0u), d2.end());
  EXPECT_NE(std::find(d2.begin(), d2.end(), 3u), d2.end());
}

// Paper Sec. 5.3, first example: deleting //patient/treatment must trigger
// R3 (whose expansion contains //patient/treatment) and, through the
// dependency graph, R1.
TEST_F(TriggerTest, DeleteTreatmentTriggersR3AndR1) {
  auto ids = TriggeredIds("//patient/treatment");
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R3"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R1"), ids.end());
  // R2 (names) must not fire.
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "R2"), ids.end());
}

// Paper Sec. 5.3, second example: deleting //treatment (descendant axis in
// R5's predicate) — without schema expansion R5 would not fire.
TEST_F(TriggerTest, DeleteAllTreatmentsTriggersR5ViaSchemaExpansion) {
  auto ids = TriggeredIds("//treatment");
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R5"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R3"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R1"), ids.end());
}

// The paper's R1/R5 discussion (Sec. 5.3): with only those two rules,
// deleting //treatment fires nothing unless descendant predicates are
// rewritten via the schema.  (In the full Table 3 policy, R3's firing pulls
// R5 in through the dependency closure, masking the effect.)
TEST_F(TriggerTest, WithoutSchemaExpansionR5Misses) {
  auto p = ParsePolicy(
      "allow //patient\ndeny //patient[.//experimental]\n");
  ASSERT_TRUE(p.ok());
  auto u = xpath::ParsePath("//treatment");
  ASSERT_TRUE(u.ok());

  TriggerOptions no_rewrite;
  no_rewrite.expansion.schema_rewrite = false;
  TriggerIndex without(*p, schema_.get(), no_rewrite);
  EXPECT_TRUE(without.Trigger(*u).empty());  // the incorrect behaviour

  TriggerIndex with(*p, schema_.get());
  auto fired = with.Trigger(*u);
  ASSERT_EQ(fired.size(), 2u);  // R5 fires, R1 via dependency
}

TEST_F(TriggerTest, UnrelatedUpdateTriggersNothing) {
  EXPECT_TRUE(TriggeredIds("//staffinfo/staff").empty());
  EXPECT_TRUE(TriggeredIds("//doctor/phone").empty());
}

TEST_F(TriggerTest, NameUpdateTriggersOnlyR2) {
  auto ids = TriggeredIds("//patient/name");
  EXPECT_EQ(ids, (std::vector<std::string>{"R2"}));
}

TEST_F(TriggerTest, UpdateOnRuleOutputTriggersRule) {
  auto ids = TriggeredIds("//regular");
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R6"), ids.end());
}

TEST_F(TriggerTest, PatientDeletionTriggersEverythingPatientRelated) {
  auto ids = TriggeredIds("//patient");
  // u ⊑ x for the //patient expansions of R1/R2/R3/R5 spines.
  for (const char* id : {"R1", "R2", "R3", "R5"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

TEST_F(TriggerTest, StatsPopulated) {
  TriggerStats stats;
  auto u = xpath::ParsePath("//patient/treatment");
  ASSERT_TRUE(u.ok());
  index_->Trigger(*u, &stats);
  EXPECT_GT(stats.containment_tests, 0u);
  EXPECT_GT(stats.directly_triggered, 0u);
  EXPECT_GT(stats.dependency_added, 0u);
}

TEST_F(TriggerTest, MedValueUpdateTriggersNothingAfterOptimization) {
  // R7 (med="celecoxib") was optimized away; //regular/med relates to no
  // surviving rule's expansion except through //regular/med ⊑ ... none.
  EXPECT_TRUE(TriggeredIds("//regular/med").empty());
}

TEST(TriggerUnoptimizedTest, MedUpdateTriggersR7OnUnoptimizedPolicy) {
  auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
  ASSERT_TRUE(dtd.ok());
  xml::SchemaGraph schema(*dtd);
  auto p = ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(p.ok());
  TriggerIndex index(*p, &schema);
  auto u = xpath::ParsePath("//regular/med");
  ASSERT_TRUE(u.ok());
  std::vector<std::string> ids;
  for (size_t i : index.Trigger(*u)) ids.push_back(p->rules()[i].id);
  // R7's expansion includes //regular/med.
  EXPECT_NE(std::find(ids.begin(), ids.end(), "R7"), ids.end());
}

}  // namespace
}  // namespace xmlac::policy
