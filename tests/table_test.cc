#include "reldb/table.h"

#include <gtest/gtest.h>

namespace xmlac::reldb {
namespace {

TableSchema PatientSchema() {
  return TableSchema("patient", {{"id", ValueType::kInt64},
                                 {"pid", ValueType::kInt64},
                                 {"v", ValueType::kString},
                                 {"s", ValueType::kString}});
}

Row MakeRow(int64_t id, int64_t pid, const char* v, const char* s) {
  return {Value::Int(id), Value::Int(pid), Value::Str(v), Value::Str(s)};
}

// Both storage layouts must behave identically through the Table interface.
class TableParamTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  std::unique_ptr<Table> Make() { return MakeTable(PatientSchema(), GetParam()); }
};

TEST_P(TableParamTest, InsertAndGet) {
  auto t = Make();
  ASSERT_TRUE(t->Insert(MakeRow(1, 0, "a", "-")).ok());
  ASSERT_TRUE(t->Insert(MakeRow(2, 1, "b", "-")).ok());
  EXPECT_EQ(t->AliveCount(), 2u);
  EXPECT_EQ(t->Capacity(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).AsInt(), 1);
  EXPECT_EQ(t->GetValue(1, 2).AsString(), "b");
  Row r = t->GetRow(1);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[1].AsInt(), 1);
}

TEST_P(TableParamTest, InsertRejectsWrongWidth) {
  auto t = Make();
  auto r = t->Insert({Value::Int(1)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(TableParamTest, SetValue) {
  auto t = Make();
  ASSERT_TRUE(t->Insert(MakeRow(1, 0, "a", "-")).ok());
  t->SetValue(0, 3, Value::Str("+"));
  EXPECT_EQ(t->GetValue(0, 3).AsString(), "+");
}

TEST_P(TableParamTest, DeleteTombstones) {
  auto t = Make();
  ASSERT_TRUE(t->Insert(MakeRow(1, 0, "a", "-")).ok());
  ASSERT_TRUE(t->Insert(MakeRow(2, 1, "b", "-")).ok());
  t->DeleteRow(0);
  EXPECT_FALSE(t->IsAlive(0));
  EXPECT_TRUE(t->IsAlive(1));
  EXPECT_EQ(t->AliveCount(), 1u);
  EXPECT_EQ(t->Capacity(), 2u);
  t->DeleteRow(0);  // idempotent
  EXPECT_EQ(t->AliveCount(), 1u);
}

TEST_P(TableParamTest, IndexLookup) {
  auto t = Make();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert(MakeRow(i, i / 10, "v", "-")).ok());
  }
  ASSERT_TRUE(t->CreateIndex("pid").ok());
  auto col = t->schema().ColumnIndex("pid");
  ASSERT_TRUE(col.has_value());
  EXPECT_TRUE(t->HasIndex(*col));
  auto rows = t->IndexLookup(*col, Value::Int(3));
  EXPECT_EQ(rows.size(), 10u);
  for (RowIdx i : rows) EXPECT_EQ(t->GetValue(i, *col).AsInt(), 3);
}

TEST_P(TableParamTest, IndexMaintainedAcrossMutations) {
  auto t = Make();
  ASSERT_TRUE(t->CreateIndex("id").ok());
  size_t id_col = *t->schema().ColumnIndex("id");
  // Insert after index creation.
  ASSERT_TRUE(t->Insert(MakeRow(7, 0, "a", "-")).ok());
  EXPECT_EQ(t->IndexLookup(id_col, Value::Int(7)).size(), 1u);
  // Update moves the entry.
  t->SetValue(0, id_col, Value::Int(8));
  EXPECT_TRUE(t->IndexLookup(id_col, Value::Int(7)).empty());
  EXPECT_EQ(t->IndexLookup(id_col, Value::Int(8)).size(), 1u);
  // Delete removes it.
  t->DeleteRow(0);
  EXPECT_TRUE(t->IndexLookup(id_col, Value::Int(8)).empty());
}

TEST_P(TableParamTest, DuplicateIndexRejected) {
  auto t = Make();
  ASSERT_TRUE(t->CreateIndex("id").ok());
  EXPECT_EQ(t->CreateIndex("id").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t->CreateIndex("nope").code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Layouts, TableParamTest,
                         ::testing::Values(StorageKind::kRowStore,
                                           StorageKind::kColumnStore),
                         [](const auto& info) {
                           return info.param == StorageKind::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

TEST(ColumnStoreTest, ColumnAccessor) {
  ColumnStoreTable t(PatientSchema());
  ASSERT_TRUE(t.Insert(MakeRow(1, 0, "a", "-")).ok());
  ASSERT_TRUE(t.Insert(MakeRow(2, 1, "b", "+")).ok());
  const auto& signs = t.column(3);
  ASSERT_EQ(signs.size(), 2u);
  EXPECT_EQ(signs[1].AsString(), "+");
}

TEST(TableFactoryTest, KindsMatch) {
  EXPECT_EQ(MakeTable(PatientSchema(), StorageKind::kRowStore)->storage_kind(),
            StorageKind::kRowStore);
  EXPECT_EQ(
      MakeTable(PatientSchema(), StorageKind::kColumnStore)->storage_kind(),
      StorageKind::kColumnStore);
}

}  // namespace
}  // namespace xmlac::reldb
