#include "engine/multi_subject.h"

#include <gtest/gtest.h>

#include "engine/relational_backend.h"
#include "tests/testdata.h"

namespace xmlac::engine {
namespace {

// A nurse sees patient names; a doctor additionally sees treatments; a
// billing clerk only bills.
constexpr char kNursePolicy[] = R"(
default deny
conflict deny
allow //patient
allow //patient/name
deny  //patient[treatment]
)";

constexpr char kDoctorPolicy[] = R"(
default deny
conflict deny
allow //patient
allow //patient/name
allow //patient/psn
allow //treatment
allow //regular
allow //experimental
allow //med
allow //test
allow //bill
)";

constexpr char kBillingPolicy[] = R"(
default deny
conflict deny
allow //bill
)";

std::unique_ptr<Backend> NativeFactory() {
  return std::make_unique<NativeXmlBackend>();
}

class MultiSubjectTest : public ::testing::Test {
 protected:
  MultiSubjectTest() : msc_(NativeFactory) {}

  void SetUp() override {
    ASSERT_TRUE(
        msc_.Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
    ASSERT_TRUE(msc_.AddSubject("nurse", kNursePolicy).ok());
    ASSERT_TRUE(msc_.AddSubject("doctor", kDoctorPolicy).ok());
    ASSERT_TRUE(msc_.AddSubject("billing", kBillingPolicy).ok());
  }

  MultiSubjectController msc_;
};

TEST_F(MultiSubjectTest, SubjectsSeeDifferentSlices) {
  // Treatments: doctor yes, nurse no, billing no.
  EXPECT_TRUE(msc_.Query("doctor", "//treatment").ok());
  EXPECT_FALSE(msc_.Query("nurse", "//treatment").ok());
  EXPECT_FALSE(msc_.Query("billing", "//treatment").ok());
  // Bills: doctor and billing.
  EXPECT_TRUE(msc_.Query("doctor", "//bill").ok());
  EXPECT_TRUE(msc_.Query("billing", "//bill").ok());
  EXPECT_FALSE(msc_.Query("nurse", "//bill").ok());
  // Names: doctor and nurse, not billing.
  EXPECT_TRUE(msc_.Query("nurse", "//patient/name").ok());
  EXPECT_TRUE(msc_.Query("doctor", "//patient/name").ok());
  EXPECT_FALSE(msc_.Query("billing", "//patient/name").ok());
}

TEST_F(MultiSubjectTest, UnknownSubjectRejected) {
  EXPECT_EQ(msc_.Query("mallory", "//bill").status().code(),
            StatusCode::kNotFound);
}

TEST_F(MultiSubjectTest, DuplicateSubjectRejected) {
  EXPECT_EQ(msc_.AddSubject("nurse", kNursePolicy).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(MultiSubjectTest, UpdateBroadcastsToAllSubjects) {
  // The nurse cannot see //patient while treatments exist.
  EXPECT_FALSE(msc_.Query("nurse", "//patient").ok());
  auto stats = msc_.Update("//patient/treatment");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->size(), 3u);
  EXPECT_EQ(stats->at("nurse").nodes_deleted, 8u);
  // After deletion every subject's replica agrees treatments are gone and
  // the nurse sees all patients.
  EXPECT_TRUE(msc_.Query("nurse", "//patient").ok());
  auto doctor = msc_.Query("doctor", "//treatment");
  ASSERT_TRUE(doctor.ok());
  EXPECT_TRUE(doctor->ids.empty());
}

TEST_F(MultiSubjectTest, InsertBroadcastsToAllSubjects) {
  auto stats = msc_.Insert("//patient[psn=\"099\"]",
                           "<treatment><regular><med>x</med>"
                           "<bill>123</bill></regular></treatment>");
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Billing now sees one more bill.
  auto bills = msc_.Query("billing", "//bill");
  ASSERT_TRUE(bills.ok());
  EXPECT_EQ(bills->ids.size(), 3u);
  // The nurse loses patient 099.
  EXPECT_FALSE(msc_.Query("nurse", "//patient[psn=\"099\"]").ok());
}

TEST_F(MultiSubjectTest, LateSubjectSeesCurrentDocument) {
  ASSERT_TRUE(msc_.Update("//experimental").ok());
  ASSERT_TRUE(msc_.AddSubject("auditor", kDoctorPolicy).ok());
  auto r = msc_.Query("auditor", "//experimental");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ids.empty());
  auto bills = msc_.Query("auditor", "//bill");
  ASSERT_TRUE(bills.ok());
  EXPECT_EQ(bills->ids.size(), 1u);  // the experimental bill went with it
}

TEST_F(MultiSubjectTest, RemoveSubject) {
  ASSERT_TRUE(msc_.RemoveSubject("billing").ok());
  EXPECT_EQ(msc_.subject_count(), 2u);
  EXPECT_EQ(msc_.RemoveSubject("billing").code(), StatusCode::kNotFound);
  EXPECT_FALSE(msc_.Query("billing", "//bill").ok());
}

TEST_F(MultiSubjectTest, SubjectNamesSorted) {
  EXPECT_EQ(msc_.SubjectNames(),
            (std::vector<std::string>{"billing", "doctor", "nurse"}));
}

TEST(MultiSubjectMixedBackendsTest, FactoryMayVaryBackendKind) {
  int counter = 0;
  MultiSubjectController msc([&counter]() -> std::unique_ptr<Backend> {
    if (counter++ == 0) return std::make_unique<NativeXmlBackend>();
    return std::make_unique<RelationalBackend>();
  });
  ASSERT_TRUE(msc.Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
  ASSERT_TRUE(msc.AddSubject("a", kDoctorPolicy).ok());
  ASSERT_TRUE(msc.AddSubject("b", kDoctorPolicy).ok());
  // Both backends answer identically.
  auto qa = msc.Query("a", "//bill");
  auto qb = msc.Query("b", "//bill");
  ASSERT_TRUE(qa.ok() && qb.ok());
  EXPECT_EQ(qa->ids, qb->ids);
}

TEST(MultiSubjectLifecycleTest, OrderingErrors) {
  MultiSubjectController msc(NativeFactory);
  EXPECT_FALSE(msc.AddSubject("early", kNursePolicy).ok());
  ASSERT_TRUE(msc.Load(testdata::kHospitalDtd, testdata::kHospitalDoc).ok());
  ASSERT_TRUE(msc.AddSubject("x", kNursePolicy).ok());
  // Re-loading with subjects present is rejected (replicas would diverge).
  EXPECT_EQ(msc.Load(testdata::kHospitalDtd, testdata::kHospitalDoc).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xmlac::engine
