#include "policy/policy.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"
#include "xpath/parser.h"

namespace xmlac::policy {
namespace {

TEST(PolicyParserTest, ParsesHospitalPolicy) {
  auto r = ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->default_semantics(), DefaultSemantics::kDeny);
  EXPECT_EQ(r->conflict_resolution(), ConflictResolution::kDenyOverrides);
  ASSERT_EQ(r->size(), 8u);
  EXPECT_EQ(r->rules()[0].id, "R1");
  EXPECT_EQ(r->rules()[0].effect, Effect::kAllow);
  EXPECT_EQ(xpath::ToString(r->rules()[0].resource), "//patient");
  EXPECT_EQ(r->rules()[2].effect, Effect::kDeny);
  EXPECT_EQ(r->PositiveRules().size(), 6u);
  EXPECT_EQ(r->NegativeRules().size(), 2u);
}

TEST(PolicyParserTest, DefaultsAreDenyDeny) {
  auto r = ParsePolicy("allow //a\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->default_semantics(), DefaultSemantics::kDeny);
  EXPECT_EQ(r->conflict_resolution(), ConflictResolution::kDenyOverrides);
}

TEST(PolicyParserTest, AllowDirectives) {
  auto r = ParsePolicy("default allow\nconflict allow\ndeny //a\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->default_semantics(), DefaultSemantics::kAllow);
  EXPECT_EQ(r->conflict_resolution(), ConflictResolution::kAllowOverrides);
}

TEST(PolicyParserTest, CommentsAndBlanksIgnored) {
  auto r = ParsePolicy("# header\n\n  # indented comment\nallow //a\n\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
}

TEST(PolicyParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParsePolicy("grant //a\n").ok());
  EXPECT_FALSE(ParsePolicy("allow\n").ok());
  EXPECT_FALSE(ParsePolicy("allow not-an-xpath\n").ok());
  EXPECT_FALSE(ParsePolicy("default maybe\n").ok());
  EXPECT_FALSE(ParsePolicy("default deny\ndefault deny\n").ok());
  EXPECT_FALSE(ParsePolicy("allow //a\ndefault deny\n").ok());
  EXPECT_FALSE(ParsePolicy("conflict deny\nconflict deny\n").ok());
}

TEST(PolicyParserTest, ErrorsCarryLineNumbers) {
  auto r = ParsePolicy("allow //a\nbogus line\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(PolicyTest, RuleIdsAssignedSequentially) {
  Policy p;
  Rule r1;
  r1.resource = *xpath::ParsePath("//a");
  p.AddRule(r1);
  Rule r2;
  r2.id = "custom";
  r2.resource = *xpath::ParsePath("//b");
  p.AddRule(r2);
  Rule r3;
  r3.resource = *xpath::ParsePath("//c");
  p.AddRule(r3);
  EXPECT_EQ(p.rules()[0].id, "R1");
  EXPECT_EQ(p.rules()[1].id, "custom");
  EXPECT_EQ(p.rules()[2].id, "R3");
}

TEST(PolicyTest, ToStringRoundTrip) {
  auto r = ParsePolicy(testdata::kHospitalPolicy);
  ASSERT_TRUE(r.ok());
  std::string printed = r->ToString();
  auto r2 = ParsePolicy(printed);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->ToString(), printed);
  EXPECT_EQ(r2->size(), r->size());
}

TEST(PolicyTest, RuleToString) {
  auto r = ParsePolicy("deny //patient[treatment]\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rules()[0].ToString(), "R1: deny //patient[treatment]");
  EXPECT_EQ(EffectSign(Effect::kAllow), '+');
  EXPECT_EQ(EffectSign(Effect::kDeny), '-');
}

}  // namespace
}  // namespace xmlac::policy
