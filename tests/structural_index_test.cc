#include "xpath/structural_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "obs/metrics.h"
#include "testing/generators.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

using xml::Document;
using xml::NodeId;

Document Parse(std::string_view text) {
  auto r = xml::ParseDocument(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(*r);
}

Path MustParse(std::string_view expr) {
  auto p = ParsePath(expr);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

// Naive and structural evaluation of `expr` must coincide; returns the
// (shared) result.
std::vector<NodeId> EvalBoth(std::string_view expr, const Document& doc,
                             const StructuralIndex& index) {
  Path p = MustParse(expr);
  std::vector<NodeId> naive = Evaluate(p, doc);
  EvaluatorOptions options;
  options.use_structural_index = true;
  options.index = index.current();
  std::vector<NodeId> structural = Evaluate(p, doc, options);
  EXPECT_EQ(naive, structural) << expr;
  return naive;
}

// ----- Interval labels ---------------------------------------------------

TEST(IntervalLabelTest, ContainmentMatchesAncestry) {
  Document doc = Parse(testdata::kHospitalDoc);
  std::vector<IntervalLabel> labels = ComputeIntervalLabels(doc);
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (!doc.IsAlive(id) || doc.node(id).kind != xml::NodeKind::kElement) {
      continue;
    }
    const IntervalLabel& l = labels[id];
    ASSERT_NE(l.end, 0u);
    EXPECT_LT(l.start, l.end);
    // Walk to the root: every ancestor's interval strictly contains ours,
    // with one level less per hop.
    uint32_t level = l.level;
    for (NodeId a = doc.node(id).parent; a != xml::kInvalidNode;
         a = doc.node(a).parent) {
      const IntervalLabel& al = labels[a];
      EXPECT_LT(al.start, l.start);
      EXPECT_LT(l.end, al.end);
      ASSERT_GT(level, 0u);
      --level;
      EXPECT_GE(al.level, 0u);
    }
    EXPECT_EQ(level, 0u);  // root is level 0
  }
  // Siblings never overlap.
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (!doc.IsAlive(id)) continue;
    const xml::Node& n = doc.node(id);
    uint64_t prev_end = 0;
    for (NodeId c : n.children) {
      if (doc.node(c).kind != xml::NodeKind::kElement) continue;
      EXPECT_GT(labels[c].start, prev_end);
      prev_end = labels[c].end;
    }
  }
}

TEST(IntervalLabelTest, AllocateChildIntervalNestsAndExhausts) {
  uint64_t start = 0;
  uint64_t end = 0;
  ASSERT_TRUE(AllocateChildInterval(100, 1000, 100, &start, &end));
  EXPECT_GT(start, 100u);
  EXPECT_LE(start, end);
  EXPECT_LT(end, 1000u);
  // Repeated sibling allocation always terminates in exhaustion.
  uint64_t anchor = end;
  int allocated = 0;
  while (AllocateChildInterval(100, 1000, anchor, &start, &end)) {
    EXPECT_GT(start, anchor);
    EXPECT_LE(start, end);
    EXPECT_LT(end, 1000u);
    anchor = end;
    ++allocated;
    ASSERT_LT(allocated, 2000) << "allocation does not converge";
  }
  EXPECT_GT(allocated, 0);
  // A gap of nothing fails immediately.
  EXPECT_FALSE(AllocateChildInterval(100, 103, 100, &start, &end));
}

// ----- Index maintenance -------------------------------------------------

TEST(StructuralIndexTest, IncrementalInsertAvoidsRebuild) {
  Document doc = Parse(testdata::kHospitalDoc);
  StructuralIndex index(&doc);
  index.Publish();
  EXPECT_EQ(index.builds(), 1u);
  ASSERT_TRUE(index.ReadyFor(doc));

  std::vector<NodeId> patients = EvalBoth("//patients", doc, index);
  ASSERT_EQ(patients.size(), 1u);
  NodeId p = doc.CreateElement(patients[0], "patient");
  NodeId psn = doc.CreateElement(p, "psn");
  doc.CreateText(psn, "777");
  EXPECT_FALSE(index.ReadyFor(doc));

  index.Publish();
  EXPECT_EQ(index.builds(), 1u) << "append should replay, not rebuild";
  EXPECT_GE(index.incremental_updates(), 1u);
  ASSERT_TRUE(index.ReadyFor(doc));
  EXPECT_EQ(EvalBoth("//patient", doc, index).size(), 4u);
  EXPECT_EQ(EvalBoth("//patient[psn=\"777\"]", doc, index).size(), 1u);
}

TEST(StructuralIndexTest, DeleteTombstonesThenCompacts) {
  Document doc = Parse(testdata::kHospitalDoc);
  StructuralIndex index(&doc);
  index.Publish();
  std::vector<NodeId> patients = EvalBoth("//patient", doc, index);
  ASSERT_EQ(patients.size(), 3u);
  doc.DeleteSubtree(patients[0]);
  index.Publish();
  EXPECT_EQ(EvalBoth("//patient", doc, index).size(), 2u);
  EXPECT_EQ(EvalBoth("//patient[treatment]", doc, index).size(), 1u);
  // Deleting most of the tree forces the tombstone-compaction rebuild
  // sooner or later; correctness must hold throughout.
  std::vector<NodeId> depts = EvalBoth("//dept", doc, index);
  ASSERT_EQ(depts.size(), 1u);
  doc.DeleteSubtree(depts[0]);
  index.Publish();
  EXPECT_TRUE(EvalBoth("//patient", doc, index).empty());
  EXPECT_EQ(EvalBoth("//hospital", doc, index).size(), 1u);
}

// Regression: when the bounded mutation journal drops the window the
// publisher needs, the forced full rebuild must (a) still yield a correct
// version and (b) be surfaced through the xml.journal.window_misses
// counter, on the WRITER (Publish), never a reader
// (docs/durability.md, "Observability").
TEST(StructuralIndexTest, JournalWindowMissCountsAndRebuilds) {
  obs::MetricsRegistry registry;
  obs::ScopedMetrics scoped(&registry);
  Document doc = Parse(testdata::kHospitalDoc);
  StructuralIndex index(&doc);
  index.Publish();
  EXPECT_EQ(index.builds(), 1u);

  // Overflow the journal (cap 2^16; overflow drops the oldest half) so
  // the window [synced_version, now) is gone.
  std::vector<NodeId> patients = EvalBoth("//patients", doc, index);
  ASSERT_EQ(patients.size(), 1u);
  for (int i = 0; i < (1 << 16) + 8; ++i) {
    NodeId n = doc.CreateElement(patients[0], "patient");
    doc.DeleteSubtree(n);
  }
  std::vector<xml::Mutation> mutations;
  ASSERT_FALSE(doc.MutationsSince(1, &mutations))
      << "journal window unexpectedly intact; raise the loop count";

  index.Publish();
  EXPECT_EQ(index.builds(), 2u) << "window miss must force a full rebuild";
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  auto it = snapshot.counters.find("xml.journal.window_misses");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 1u);
  // The rebuilt index still answers correctly.
  EXPECT_EQ(EvalBoth("//patient", doc, index).size(), 3u);

  // A follow-up in-window publish replays incrementally and does not bump
  // the counter again.
  NodeId p = doc.CreateElement(patients[0], "patient");
  NodeId psn = doc.CreateElement(p, "psn");
  doc.CreateText(psn, "888");
  index.Publish();
  EXPECT_EQ(index.builds(), 2u);
  snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("xml.journal.window_misses"), 1u);
}

TEST(StructuralIndexTest, StaleIndexFallsBackToNaive) {
  Document doc = Parse(testdata::kHospitalDoc);
  StructuralIndex index(&doc);
  index.Publish();
  std::vector<NodeId> treatments = EvalBoth("//treatment", doc, index);
  ASSERT_EQ(treatments.size(), 2u);
  doc.DeleteSubtree(treatments[0]);
  // No Publish: the version predates the delete, so the dispatching
  // overload must detect the mismatch (Matches false) and answer via the
  // naive path instead of the stale streams.
  EXPECT_FALSE(index.ReadyFor(doc));
  ASSERT_NE(index.current(), nullptr);
  EXPECT_FALSE(index.current()->Matches(doc));
  EvaluatorOptions options;
  options.use_structural_index = true;
  options.index = index.current();
  EXPECT_EQ(Evaluate(MustParse("//treatment"), doc, options).size(), 1u);
}

// ----- Multi-version behavior --------------------------------------------

TEST(StructuralIndexTest, PublishedVersionsAreImmutableSnapshots) {
  Document doc = Parse(testdata::kHospitalDoc);
  StructuralIndex index(&doc);
  index.Publish();
  // Hold the version across a mutation + publish by shared ownership, the
  // way a serve snapshot does.
  std::shared_ptr<const IndexVersion> v1 = index.CurrentShared();
  ASSERT_NE(v1, nullptr);
  ASSERT_TRUE(v1->Matches(doc));
  size_t patients_before = v1->TagStream("patient").size();
  std::vector<NodeId> patients = EvalBoth("//patients", doc, index);
  ASSERT_EQ(patients.size(), 1u);
  doc.CreateElement(patients[0], "patient");
  index.Publish();
  const IndexVersion* v2 = index.current();
  ASSERT_NE(v2, v1.get());
  EXPECT_TRUE(v2->Matches(doc));
  EXPECT_FALSE(v1->Matches(doc));
  // The held version is untouched by the publication — the reader contract
  // the whole MVCC design rests on.
  EXPECT_EQ(v1->TagStream("patient").size(), patients_before);
  EXPECT_EQ(v2->TagStream("patient").size(), patients_before + 1);
}

TEST(StructuralIndexTest, DeleteOnlyBatchSharesStreamsWithParent) {
  Document doc = Parse(testdata::kHospitalDoc);
  StructuralIndex index(&doc);
  index.Publish();
  std::shared_ptr<const IndexVersion> v1 = index.CurrentShared();
  std::vector<NodeId> patients = EvalBoth("//patient", doc, index);
  ASSERT_GE(patients.size(), 2u);
  doc.DeleteSubtree(patients[0]);
  index.Publish();
  EXPECT_EQ(index.builds(), 1u);
  const IndexVersion* v2 = index.current();
  ASSERT_NE(v2, v1.get());
  // Tombstones filter at scan time, so a delete-only batch shares the
  // parent's label vector and every stream array wholesale (COW refcounts,
  // no copies).
  EXPECT_EQ(&v2->ElementStream(), &v1->ElementStream());
  EXPECT_EQ(&v2->TagStream("patient"), &v1->TagStream("patient"));
  EXPECT_EQ(EvalBoth("//patient", doc, index).size(), patients.size() - 1);
}

// ----- Value index / =const edges ----------------------------------------

TEST(StructuralIndexTest, ValueIndexCanonicalizesNumbers) {
  Document doc = Parse("<r><a>01</a><a>1</a><a></a><a>x</a><b>1</b></r>");
  StructuralIndex index(&doc);
  index.Publish();
  // "01" and "1" are numerically equal, so they share a bucket.
  const std::vector<NodeId>* ones = index.ValueMatches("a", "1");
  ASSERT_NE(ones, nullptr);
  EXPECT_EQ(ones->size(), 2u);
  const std::vector<NodeId>* ones_padded = index.ValueMatches("a", "01");
  ASSERT_NE(ones_padded, nullptr);
  EXPECT_EQ(*ones_padded, *ones);
  // Non-numeric text matches only itself; empty text matches nothing.
  ASSERT_NE(index.ValueMatches("a", "x"), nullptr);
  EXPECT_EQ(index.ValueMatches("a", "x")->size(), 1u);
  EXPECT_EQ(index.ValueMatches("a", ""), nullptr);
  EXPECT_EQ(index.ValueMatches("a", "y"), nullptr);
  EXPECT_EQ(index.ValueMatches("nosuch", "1"), nullptr);

  EXPECT_EQ(index.CanonicalValue("01"), index.CanonicalValue("1"));
  EXPECT_EQ(index.CanonicalValue("-0"), index.CanonicalValue("0"));
  EXPECT_NE(index.CanonicalValue("01x"), index.CanonicalValue("1x"));
}

TEST(StructuralIndexTest, EqConstEdgeCasesMatchNaive) {
  Document doc = Parse("<r><a>01</a><a>1</a><a></a><a>x</a><b>1</b></r>");
  StructuralIndex index(&doc);
  index.Publish();
  EXPECT_EQ(EvalBoth("//a[. = \"1\"]", doc, index).size(), 2u);
  EXPECT_EQ(EvalBoth("//a[. = \"01\"]", doc, index).size(), 2u);
  EXPECT_EQ(EvalBoth("//r[a = \"1\"]", doc, index).size(), 1u);
  EXPECT_EQ(EvalBoth("//r[a = \"x\"]", doc, index).size(), 1u);
  // Empty text never compares equal, even to "".
  EXPECT_TRUE(EvalBoth("//r[a = \"\"]", doc, index).empty());
  EXPECT_TRUE(EvalBoth("//a[. = \"\"]", doc, index).empty());
  // Value written after the index build: the lazy buckets are invalidated
  // by the journal replay, not served stale.
  std::vector<NodeId> bs = EvalBoth("//b", doc, index);
  ASSERT_EQ(bs.size(), 1u);
  NodeId b2 = doc.CreateElement(doc.root(), "b");
  doc.CreateText(b2, "2");
  index.Publish();
  EXPECT_EQ(EvalBoth("//r[b = \"2\"]", doc, index).size(), 1u);
  EXPECT_EQ(EvalBoth("//b[. = \"2\"]", doc, index).size(), 1u);
}

// ----- Deep documents ----------------------------------------------------

TEST(StructuralIndexTest, DeepChainDocumentDoesNotOverflow) {
  // Regression: CollectDescendants used to recurse per tree level, so a
  // 50k-deep chain overflowed the call stack (reliably under ASan).  Both
  // evaluators and the labeling pass must be iterative.
  constexpr int kDepth = 50000;
  Document doc;
  NodeId cur = doc.CreateRoot("a");
  for (int i = 1; i < kDepth; ++i) cur = doc.CreateElement(cur, "b");
  doc.CreateText(doc.CreateElement(cur, "leaf"), "bottom");

  StructuralIndex index(&doc);
  index.Publish();
  EXPECT_EQ(index.label(doc.root()).level, 0u);
  EXPECT_EQ(EvalBoth("//leaf", doc, index).size(), 1u);
  EXPECT_EQ(EvalBoth("//b", doc, index).size(),
            static_cast<size_t>(kDepth - 1));
  EXPECT_EQ(EvalBoth("/a//leaf", doc, index).size(), 1u);
  EXPECT_EQ(EvalBoth("//b[leaf]", doc, index).size(), 1u);
}

// ----- Recursive schemas -------------------------------------------------

constexpr char kRecursiveDtd[] = R"(
<!ELEMENT section (title?, section*)>
<!ELEMENT title (#PCDATA)>
)";

constexpr char kRecursiveDoc[] = R"(
<section>
  <title>book</title>
  <section>
    <title>ch1</title>
    <section><title>s11</title></section>
    <section><title>s12</title></section>
  </section>
  <section>
    <title>ch2</title>
    <section>
      <title>s21</title>
      <section><title>s211</title></section>
    </section>
  </section>
</section>
)";

TEST(StructuralIndexTest, RecursiveDocumentDescendants) {
  Document doc = Parse(kRecursiveDoc);
  StructuralIndex index(&doc);
  index.Publish();
  EXPECT_EQ(EvalBoth("//section", doc, index).size(), 7u);
  EXPECT_EQ(EvalBoth("//section//section", doc, index).size(), 6u);
  EXPECT_EQ(EvalBoth("//section//section//section", doc, index).size(), 4u);
  EXPECT_EQ(EvalBoth("/section/section/section", doc, index).size(), 3u);
  // The s21 section's descendant titles: its own "s21" and nested "s211".
  EXPECT_EQ(EvalBoth("//section[title=\"s21\"]//title", doc, index).size(),
            2u);
  // book, ch2, s21, and s211 itself (its title is a proper descendant).
  EXPECT_EQ(EvalBoth("//section[.//title=\"s211\"]", doc, index).size(), 4u);
}

TEST(RelationalIntervalTest, RecursiveSchemaNeedsIntervalColumns) {
  auto dtd = xml::ParseDtd(kRecursiveDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  Document doc = Parse(kRecursiveDoc);
  Path q = MustParse("//section//title");

  engine::RelationalOptions plain;
  engine::RelationalBackend chains(plain);
  ASSERT_TRUE(chains.Load(*dtd, doc).ok());
  auto unsupported = chains.EvaluateQuery(q);
  ASSERT_FALSE(unsupported.ok());
  EXPECT_EQ(unsupported.status().code(), StatusCode::kUnsupported);

  engine::RelationalOptions with_intervals;
  with_intervals.interval_columns = true;
  engine::RelationalBackend intervals(with_intervals);
  ASSERT_TRUE(intervals.Load(*dtd, doc).ok());
  engine::NativeXmlBackend native;
  ASSERT_TRUE(native.Load(*dtd, doc).ok());
  for (const char* expr :
       {"//section", "//title", "//section//title", "//section//section",
        "/section/section//title", "//section[title=\"ch1\"]//title",
        "//section[.//title=\"s211\"]", "/section//section[section]"}) {
    Path p = MustParse(expr);
    auto rel = intervals.EvaluateQuery(p);
    auto nat = native.EvaluateQuery(p);
    ASSERT_TRUE(rel.ok()) << expr << ": " << rel.status();
    ASSERT_TRUE(nat.ok()) << expr << ": " << nat.status();
    EXPECT_EQ(*rel, *nat) << expr;
  }
}

TEST(RelationalIntervalTest, InsertUnderKeepsBackendsAligned) {
  auto dtd = xml::ParseDtd(kRecursiveDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  Document doc = Parse(kRecursiveDoc);
  engine::RelationalOptions options;
  options.interval_columns = true;
  engine::RelationalBackend rel(options);
  engine::NativeXmlBackend native;
  ASSERT_TRUE(rel.Load(*dtd, doc).ok());
  ASSERT_TRUE(native.Load(*dtd, doc).ok());

  Document fragment =
      Parse("<section><title>new</title><section><title>leaf</title>"
            "</section></section>");
  Path target = MustParse("//section[title=\"s12\"]");
  auto rn = rel.InsertUnder(target, fragment);
  auto nn = native.InsertUnder(target, fragment);
  ASSERT_TRUE(rn.ok()) << rn.status();
  ASSERT_TRUE(nn.ok()) << nn.status();
  EXPECT_EQ(*rn, *nn);
  for (const char* expr :
       {"//section", "//title", "//section[title=\"new\"]//title",
        "//section[title=\"s12\"]//section"}) {
    Path p = MustParse(expr);
    auto r = rel.EvaluateQuery(p);
    auto n = native.EvaluateQuery(p);
    ASSERT_TRUE(r.ok()) << expr << ": " << r.status();
    ASSERT_TRUE(n.ok()) << expr << ": " << n.status();
    EXPECT_EQ(*r, *n) << expr;
  }
}

// ----- Property: structural == naive on the generator corpus -------------

TEST(StructuralPropertyTest, MatchesNaiveOnGeneratedCorpus) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    testing::InstanceOptions options;
    options.seed = seed;
    options.max_doc_nodes = 120;
    testing::Instance instance = testing::GenerateInstance(options);
    StructuralIndex index(&instance.doc);
    index.Publish();
    testing::RandomPathGenerator paths(instance.doc, seed * 7919 + 1);
    for (int i = 0; i < 20; ++i) {
      Path p = paths.Next();
      std::vector<NodeId> naive = Evaluate(p, instance.doc);
      EvaluatorOptions opt;
      opt.use_structural_index = true;
      opt.index = index.current();
      std::vector<NodeId> structural = Evaluate(p, instance.doc, opt);
      ASSERT_EQ(naive, structural)
          << "seed " << seed << " path " << ToString(p);
    }
    // Mutate (delete one subtree, append one element), re-sync, re-check:
    // the incremental maintenance must preserve equivalence.
    std::vector<NodeId> all = Evaluate(MustParse("//*"), instance.doc);
    if (all.size() > 2) {
      instance.doc.DeleteSubtree(all[all.size() / 2]);
    }
    instance.doc.CreateElement(instance.doc.root(),
                               instance.doc.node(instance.doc.root()).label);
    index.Publish();
    for (int i = 0; i < 10; ++i) {
      Path p = paths.Next();
      std::vector<NodeId> naive = Evaluate(p, instance.doc);
      EvaluatorOptions opt;
      opt.use_structural_index = true;
      opt.index = index.current();
      std::vector<NodeId> structural = Evaluate(p, instance.doc, opt);
      ASSERT_EQ(naive, structural)
          << "post-update seed " << seed << " path " << ToString(p);
    }
  }
}

}  // namespace
}  // namespace xmlac::xpath
