#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>

#include "obs/export.h"

namespace xmlac::obs {
namespace {

// --- Minimal JSON syntax checker --------------------------------------------
// Enough of RFC 8259 to validate the exporter's output shape: objects,
// arrays, strings with escapes, and (possibly signed) numbers.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (!Expect('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Expect('"');
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(TracerTest, SpanNestingMirrorsScopes) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(&tracer, "outer");
    ASSERT_TRUE(outer.active());
    {
      ScopedSpan inner(&tracer, "inner");
      inner.AddCount("items", 3);
    }
    { ScopedSpan sibling(&tracer, "sibling"); }
  }
  const TraceSpan& root = tracer.root();
  ASSERT_EQ(root.children.size(), 1u);
  const TraceSpan& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(outer.duration_us, 0);  // closed
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_EQ(outer.children[1]->name, "sibling");
  ASSERT_EQ(outer.children[0]->counters.size(), 1u);
  EXPECT_EQ(outer.children[0]->counters[0].first, "items");
  EXPECT_EQ(outer.children[0]->counters[0].second, 3);
  // Children start no earlier than the parent and close within it.
  EXPECT_GE(outer.children[0]->start_us, outer.start_us);
}

TEST(TracerTest, RepeatedAddCountAccumulates) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan s(&tracer, "op");
    s.AddCount("n", 2);
    s.AddCount("n", 5);
  }
  const TraceSpan& op = *tracer.root().children[0];
  ASSERT_EQ(op.counters.size(), 1u);
  EXPECT_EQ(op.counters[0].second, 7);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;  // disabled by default
  {
    ScopedSpan s(&tracer, "never");
    EXPECT_FALSE(s.active());
    s.AddCount("ignored", 1);  // must be a harmless no-op
  }
  EXPECT_TRUE(tracer.root().children.empty());
  // Null tracer: also a no-op.
  ScopedSpan null_span(nullptr, "never");
  EXPECT_FALSE(null_span.active());
}

TEST(TracerTest, DisabledPathSkipsTheNameEntirely) {
  // The disabled constructor must not read the name: build one from a
  // string_view over a buffer we immediately poison.  (Guards the < 2%
  // overhead bar: no string copy, no allocation on the disabled path.)
  Tracer tracer;
  std::string name = "live";
  std::string_view view(name);
  ScopedSpan s(&tracer, view);
  name.assign(200, 'x');  // would dangle if the span had kept the view
  EXPECT_FALSE(s.active());
  EXPECT_TRUE(tracer.root().children.empty());
}

TEST(TracerTest, ClearRestartsTheTree) {
  Tracer tracer;
  tracer.set_enabled(true);
  { ScopedSpan s(&tracer, "a"); }
  ASSERT_EQ(tracer.root().children.size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.root().children.empty());
  { ScopedSpan s(&tracer, "b"); }
  ASSERT_EQ(tracer.root().children.size(), 1u);
  EXPECT_EQ(tracer.root().children[0]->name, "b");
}

TEST(TracerTest, SpanCountCapDropsExcessSpans) {
  MetricsRegistry reg;
  ScopedMetrics metrics(&reg);
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_limits(/*max_spans=*/3, /*max_depth=*/Tracer::kDefaultMaxDepth);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan s(&tracer, "flat");
    if (i < 3) {
      EXPECT_TRUE(s.active()) << i;
    } else {
      EXPECT_FALSE(s.active()) << i;
      s.AddCount("ignored", 1);  // dropped span: must be a harmless no-op
    }
  }
  EXPECT_EQ(tracer.root().children.size(), 3u);
  EXPECT_EQ(tracer.dropped_spans(), 7u);
  EXPECT_EQ(reg.Snapshot().counters.at("trace.dropped_spans"), 7u);
}

TEST(TracerTest, DepthCapDropsDeepSpansButKeepsSiblings) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_limits(Tracer::kDefaultMaxSpans, /*max_depth=*/2);
  {
    ScopedSpan a(&tracer, "a");
    ScopedSpan b(&tracer, "b");
    {
      ScopedSpan c(&tracer, "c");  // depth 2: refused
      EXPECT_FALSE(c.active());
    }
    // Depth bookkeeping survives the refused span: a sibling at the same
    // depth is refused too, but closing `b` frees the level again.
    ScopedSpan c2(&tracer, "c2");
    EXPECT_FALSE(c2.active());
  }
  { ScopedSpan after(&tracer, "after"); EXPECT_TRUE(after.active()); }
  EXPECT_EQ(tracer.dropped_spans(), 2u);
  const TraceSpan& root = tracer.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "a");
  EXPECT_TRUE(root.children[0]->children[0]->children.empty());
  EXPECT_EQ(root.children[1]->name, "after");
}

TEST(TracerTest, ClearResetsSpanBudget) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_limits(/*max_spans=*/2, /*max_depth=*/8);
  { ScopedSpan s(&tracer, "a"); }
  { ScopedSpan s(&tracer, "b"); }
  { ScopedSpan s(&tracer, "c"); }  // over budget
  EXPECT_EQ(tracer.dropped_spans(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.dropped_spans(), 0u);
  { ScopedSpan s(&tracer, "fresh"); EXPECT_TRUE(s.active()); }
  ASSERT_EQ(tracer.root().children.size(), 1u);
  EXPECT_EQ(tracer.root().children[0]->name, "fresh");
}

TEST(CurrentTracerTest, ScopedObsContextInstallsBothSinks) {
  EXPECT_EQ(CurrentTracer(), nullptr);
  MetricsRegistry reg;
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedObsContext ctx(&reg, &tracer);
    EXPECT_EQ(CurrentTracer(), &tracer);
    EXPECT_EQ(CurrentMetrics(), &reg);
    ScopedSpan s("via_tls");  // single-argument form uses CurrentTracer()
    EXPECT_TRUE(s.active());
  }
  EXPECT_EQ(CurrentTracer(), nullptr);
  EXPECT_EQ(CurrentMetrics(), nullptr);
  ASSERT_EQ(tracer.root().children.size(), 1u);
  EXPECT_EQ(tracer.root().children[0]->name, "via_tls");
}

TEST(TraceExportTest, JsonIsSyntacticallyValidAndNested) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan update(&tracer, "update");
    {
      ScopedSpan trig(&tracer, "trigger");
      trig.AddCount("fired", 2);
    }
    { ScopedSpan del(&tracer, "delete \"quoted\""); }
  }
  std::string json = TraceToJson(tracer.root());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"start_us\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_us\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"update\""), std::string::npos);
  EXPECT_NE(json.find("\"fired\""), std::string::npos);
  // Quotes in span names must be escaped.
  EXPECT_NE(json.find("delete \\\"quoted\\\""), std::string::npos);
  // "trigger" must appear inside update's children array (nesting survives).
  size_t update_pos = json.find("\"update\"");
  size_t trigger_pos = json.find("\"trigger\"");
  EXPECT_LT(update_pos, trigger_pos);
}

TEST(TraceExportTest, TextTreeIndentsChildren) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(&tracer, "outer");
    ScopedSpan inner(&tracer, "inner");
  }
  std::string text = TraceToText(tracer.root());
  size_t outer_pos = text.find("outer");
  size_t inner_pos = text.find("inner");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  // The child line is indented further than the parent line.
  size_t outer_line = text.rfind('\n', outer_pos);
  size_t inner_line = text.rfind('\n', inner_pos);
  size_t outer_indent = outer_pos - (outer_line + 1);
  size_t inner_indent = inner_pos - (inner_line + 1);
  EXPECT_GT(inner_indent, outer_indent);
}

}  // namespace
}  // namespace xmlac::obs
