#include "xpath/evaluator.h"

#include <gtest/gtest.h>

#include "tests/testdata.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

using xml::Document;
using xml::NodeId;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(r.ok()) << r.status();
    doc_ = std::move(*r);
  }

  std::vector<NodeId> Eval(std::string_view expr) {
    auto p = ParsePath(expr);
    EXPECT_TRUE(p.ok()) << p.status();
    return Evaluate(*p, doc_);
  }

  std::vector<std::string> Labels(const std::vector<NodeId>& ids) {
    std::vector<std::string> out;
    for (NodeId id : ids) out.push_back(doc_.node(id).label);
    return out;
  }

  Document doc_;
};

TEST_F(EvaluatorTest, RootSelection) {
  auto r = Eval("/hospital");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], doc_.root());
}

TEST_F(EvaluatorTest, WrongRootLabelSelectsNothing) {
  EXPECT_TRUE(Eval("/clinic").empty());
}

TEST_F(EvaluatorTest, ChildChain) {
  auto r = Eval("/hospital/dept/patients/patient");
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(EvaluatorTest, DescendantAxisFindsAllDepths) {
  EXPECT_EQ(Eval("//patient").size(), 3u);
  EXPECT_EQ(Eval("//bill").size(), 2u);
  // name appears under patients and staff members.
  EXPECT_EQ(Eval("//name").size(), 5u);
}

TEST_F(EvaluatorTest, DescendantCanSelectRoot) {
  auto r = Eval("//hospital");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], doc_.root());
}

TEST_F(EvaluatorTest, MixedAxes) {
  EXPECT_EQ(Eval("/hospital//name").size(), 5u);
  EXPECT_EQ(Eval("//patient/name").size(), 3u);
  EXPECT_EQ(Eval("//staff//name").size(), 2u);
}

TEST_F(EvaluatorTest, Wildcard) {
  // Children of patient across all patients: psn x3, name x3, treatment x2.
  EXPECT_EQ(Eval("//patient/*").size(), 8u);
  EXPECT_EQ(Eval("/hospital/*").size(), 1u);
  EXPECT_EQ(Eval("/*").size(), 1u);
}

TEST_F(EvaluatorTest, ExistencePredicate) {
  // Rule R3's scope: patients that have a treatment.
  EXPECT_EQ(Eval("//patient[treatment]").size(), 2u);
  EXPECT_EQ(Eval("//patient[name]").size(), 3u);
  EXPECT_EQ(Eval("//patient[doctor]").size(), 0u);
}

TEST_F(EvaluatorTest, DescendantPredicate) {
  // Rule R5's scope: patients under experimental treatment.
  auto r = Eval("//patient[.//experimental]");
  ASSERT_EQ(r.size(), 1u);
  // It is the jane doe patient: check via psn.
  auto psn = EvaluateFrom(*ParseRelativePath("psn"), doc_, r[0]);
  ASSERT_EQ(psn.size(), 1u);
  EXPECT_EQ(doc_.DirectText(psn[0]), "042");
}

TEST_F(EvaluatorTest, EqualityPredicate) {
  EXPECT_EQ(Eval("//regular[med=\"celecoxib\"]").size(), 0u);
  EXPECT_EQ(Eval("//regular[med=\"enoxaparin\"]").size(), 1u);
  EXPECT_EQ(Eval("//patient[psn=\"099\"]").size(), 1u);
}

TEST_F(EvaluatorTest, NumericComparisons) {
  // Rule R8's scope: regular treatments with bill > 1000 — none (the 1600
  // bill belongs to an experimental treatment).
  EXPECT_EQ(Eval("//regular[bill > 1000]").size(), 0u);
  EXPECT_EQ(Eval("//regular[bill > 500]").size(), 1u);
  EXPECT_EQ(Eval("//experimental[bill >= 1600]").size(), 1u);
  EXPECT_EQ(Eval("//experimental[bill < 1600]").size(), 0u);
  EXPECT_EQ(Eval("//treatment[.//bill != 700]").size(), 1u);
}

TEST_F(EvaluatorTest, SelfComparisonPredicate) {
  EXPECT_EQ(Eval("//bill[. > 1000]").size(), 1u);
  EXPECT_EQ(Eval("//bill[. = 700]").size(), 1u);
  EXPECT_EQ(Eval("//med[. = \"enoxaparin\"]").size(), 1u);
}

TEST_F(EvaluatorTest, Conjunction) {
  EXPECT_EQ(Eval("//patient[treatment and name]").size(), 2u);
  EXPECT_EQ(Eval("//patient[treatment and psn=\"033\"]").size(), 1u);
  EXPECT_EQ(Eval("//patient[treatment and psn=\"099\"]").size(), 0u);
}

TEST_F(EvaluatorTest, NestedPredicates) {
  EXPECT_EQ(Eval("//patient[treatment[regular]]").size(), 1u);
  EXPECT_EQ(Eval("//patient[treatment[regular[med=\"enoxaparin\"]]]").size(),
            1u);
}

TEST_F(EvaluatorTest, PredicatePathWithMultipleSteps) {
  EXPECT_EQ(Eval("//patient[treatment/regular/bill]").size(), 1u);
  EXPECT_EQ(Eval("//dept[patients/patient]").size(), 1u);
}

TEST_F(EvaluatorTest, ResultsAreDocumentOrderedAndUnique) {
  auto r = Eval("//name");
  for (size_t i = 1; i < r.size(); ++i) EXPECT_LT(r[i - 1], r[i]);
  // `//patient//bill` via two branches must not duplicate.
  auto bills = Eval("//dept//bill");
  EXPECT_EQ(bills.size(), 2u);
}

TEST_F(EvaluatorTest, EvaluateFromRelative) {
  auto patients = Eval("//patient");
  ASSERT_EQ(patients.size(), 3u);
  auto p = ParseRelativePath(".//bill");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(EvaluateFrom(*p, doc_, patients[0]).size(), 1u);
  EXPECT_EQ(EvaluateFrom(*p, doc_, patients[2]).size(), 0u);
}

TEST_F(EvaluatorTest, EmptyRelativePathSelectsContext) {
  Path empty;
  auto r = EvaluateFrom(empty, doc_, doc_.root());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], doc_.root());
}

TEST_F(EvaluatorTest, DeletedNodesAreInvisible) {
  auto treatments = Eval("//treatment");
  ASSERT_EQ(treatments.size(), 2u);
  doc_.DeleteSubtree(treatments[0]);
  EXPECT_EQ(Eval("//treatment").size(), 1u);
  EXPECT_EQ(Eval("//patient[treatment]").size(), 1u);
  EXPECT_EQ(Eval("//patient").size(), 3u);
}

TEST(CompareValuesTest, NumericVsLexicographic) {
  EXPECT_TRUE(CompareValues("700", CmpOp::kLt, "1000"));   // numeric
  EXPECT_FALSE(CompareValues("abc", CmpOp::kLt, "1000"));  // lexicographic
  EXPECT_TRUE(CompareValues("abc", CmpOp::kEq, "abc"));
  EXPECT_TRUE(CompareValues("10", CmpOp::kEq, "10.0"));  // numeric equality
  EXPECT_TRUE(CompareValues("x", CmpOp::kNe, "y"));
  // Empty text has no value: all comparisons are false (matches the
  // relational side, where structure-only elements have no v column).
  EXPECT_FALSE(CompareValues("", CmpOp::kEq, ""));
  EXPECT_FALSE(CompareValues("", CmpOp::kLt, "z"));
  EXPECT_FALSE(CompareValues("a", CmpOp::kNe, ""));
}

}  // namespace
}  // namespace xmlac::xpath
