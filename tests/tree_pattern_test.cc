#include "xpath/tree_pattern.h"

#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

Path P(std::string_view text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(TreePatternTest, LinearPath) {
  TreePattern tp = TreePattern::FromPath(P("/a/b"));
  ASSERT_EQ(tp.size(), 3u);  // virtual root + a + b
  EXPECT_EQ(tp.node(tp.root()).label, "");
  EXPECT_EQ(tp.output(), 2u);
  EXPECT_EQ(tp.node(2).label, "b");
  // Edges: root ->child a ->child b.
  ASSERT_EQ(tp.node(0).children.size(), 1u);
  EXPECT_FALSE(tp.node(0).children[0].descendant);
}

TEST(TreePatternTest, DescendantEdges) {
  TreePattern tp = TreePattern::FromPath(P("//a//b"));
  ASSERT_EQ(tp.size(), 3u);
  EXPECT_TRUE(tp.node(0).children[0].descendant);
  EXPECT_TRUE(tp.node(1).children[0].descendant);
}

TEST(TreePatternTest, PredicateBecomesBranch) {
  TreePattern tp = TreePattern::FromPath(P("//a[b]/c"));
  ASSERT_EQ(tp.size(), 4u);
  // `a` has two children: predicate b and spine c; output is c.
  size_t a = tp.node(0).children[0].target;
  EXPECT_EQ(tp.node(a).label, "a");
  ASSERT_EQ(tp.node(a).children.size(), 2u);
  EXPECT_EQ(tp.node(tp.output()).label, "c");
  EXPECT_NE(tp.output(), tp.node(a).children[0].target);
}

TEST(TreePatternTest, ComparisonAttachesToPredicateLeaf) {
  TreePattern tp = TreePattern::FromPath(P("//a[b/c=\"v\"]"));
  bool found = false;
  for (size_t i = 0; i < tp.size(); ++i) {
    if (tp.node(i).op.has_value()) {
      EXPECT_EQ(tp.node(i).label, "c");
      EXPECT_EQ(tp.node(i).value, "v");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TreePatternTest, SelfComparisonAttachesToStepNode) {
  TreePattern tp = TreePattern::FromPath(P("//bill[. > 1000]"));
  size_t bill = tp.output();
  ASSERT_TRUE(tp.node(bill).op.has_value());
  EXPECT_EQ(*tp.node(bill).op, CmpOp::kGt);
  EXPECT_EQ(tp.node(bill).value, "1000");
}

TEST(TreePatternTest, ProperDescendants) {
  TreePattern tp = TreePattern::FromPath(P("/a/b[c]/d"));
  auto below_root = tp.ProperDescendants(tp.root());
  EXPECT_EQ(below_root.size(), tp.size() - 1);
  // Leaf nodes have none.
  EXPECT_TRUE(tp.ProperDescendants(tp.output()).empty());
}

TEST(TreePatternTest, WildcardNode) {
  TreePattern tp = TreePattern::FromPath(P("//*"));
  EXPECT_TRUE(tp.node(tp.output()).is_wildcard());
}

TEST(TreePatternTest, DebugStringMentionsOutput) {
  TreePattern tp = TreePattern::FromPath(P("//a[b]"));
  std::string s = tp.DebugString();
  EXPECT_NE(s.find("<== output"), std::string::npos);
  EXPECT_NE(s.find("(doc)"), std::string::npos);
}

}  // namespace
}  // namespace xmlac::xpath
