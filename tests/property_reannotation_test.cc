// Property suite for the headline invariant: on random documents, random
// coverage policies and random update streams (deletes and inserts mixed),
// partial re-annotation leaves the store byte-identical in signs to a
// from-scratch annotation — across all three backends.
//
// The seeded sweep runs the shared differential harness (partial vs full vs
// batched re-annotation vs the brute-force oracle); the XMark test below
// pins the same invariant on the paper's benchmark schema.

#include <gtest/gtest.h>

#include <memory>

#include "engine/access_controller.h"
#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "testing/diff.h"
#include "testing/generators.h"
#include "workload/coverage.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

namespace tst = xmlac::testing;

// Trigger-based partial re-annotation vs ReannotateFull vs ApplyBatch vs
// the oracle, on generated instances with update streams.  Failures print
// the seed and a minimized repro.
class SeededReannotationDiffTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SeededReannotationDiffTest, PartialEqualsFullEqualsOracle) {
  tst::InstanceOptions options;
  options.max_doc_nodes = 60;
  options.max_updates = 4;
  EXPECT_EQ(
      tst::RunSeededCheck(GetParam(), options, tst::ReannotationCheck()), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededReannotationDiffTest,
                         ::testing::Range<uint64_t>(1, 9));

struct Config {
  uint64_t seed;
  int backend;  // 0 native, 1 row, 2 column
};

std::unique_ptr<Backend> MakeBackend(int kind) {
  if (kind == 0) return std::make_unique<NativeXmlBackend>();
  RelationalOptions opt;
  opt.storage = kind == 1 ? reldb::StorageKind::kRowStore
                          : reldb::StorageKind::kColumnStore;
  return std::make_unique<RelationalBackend>(opt);
}

class ReannotationPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(ReannotationPropertyTest, PartialEqualsFullAfterRandomUpdates) {
  const Config& cfg = GetParam();
  workload::XmarkGenerator gen;
  workload::XmarkOptions xopt;
  xopt.factor = 0.006;
  xopt.seed = cfg.seed;
  xml::Document doc = gen.Generate(xopt);
  auto dtd = workload::XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok());

  workload::CoverageOptions copt;
  copt.target = 0.3 + 0.05 * static_cast<double>(cfg.seed % 8);
  copt.seed = cfg.seed;
  auto policy = workload::GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(policy.ok()) << policy.status();

  auto partial = std::make_unique<AccessController>(MakeBackend(cfg.backend));
  auto oracle = std::make_unique<AccessController>(MakeBackend(cfg.backend));
  ASSERT_TRUE(partial->LoadParsed(*dtd, doc).ok());
  ASSERT_TRUE(oracle->LoadParsed(*dtd, doc).ok());
  ASSERT_TRUE(partial->SetPolicyParsed(*policy).ok());
  ASSERT_TRUE(oracle->SetPolicyParsed(*policy).ok());

  tst::RandomPathGenerator paths(doc, cfg.seed * 101 + 3);
  Random rng(cfg.seed * 13 + 1);
  // Schema-valid (target, fragment) pairs.
  struct InsertCase {
    const char* target;
    const char* fragment;
  };
  const InsertCase kInserts[] = {
      {"//person", "<watches><watch>item1</watch></watches>"},
      {"//open_auction",
       "<bidder><date>1/1/2000</date><time>1:00</time>"
       "<personref>person0</personref><increase>5.0</increase></bidder>"},
      {"//closed_auction",
       "<annotation><author>person1</author><description><text>hi</text>"
       "</description><happiness>5</happiness></annotation>"},
      {"//mailbox",
       "<mail><from>a</from><to>b</to><date>2/2/2002</date>"
       "<text>msg</text></mail>"},
  };

  for (int step = 0; step < 6; ++step) {
    if (rng.OneIn(3)) {
      const InsertCase& pick = kInserts[rng.Uniform(4)];
      const char* target = pick.target;
      const char* fragment = pick.fragment;
      auto a = partial->Insert(target, fragment);
      ASSERT_TRUE(a.ok()) << a.status() << " inserting under " << target;
      auto t = xpath::ParsePath(target);
      auto f = xml::ParseDocument(fragment);
      ASSERT_TRUE(t.ok() && f.ok());
      ASSERT_TRUE(oracle->backend()->InsertUnder(*t, *f).ok());
    } else {
      xpath::Path u = paths.Next();
      auto a = partial->Update(xpath::ToString(u));
      if (!a.ok() && a.status().code() == StatusCode::kUnsupported) {
        // Wildcard-heavy paths can exceed the relational translator's
        // branch budget; nothing was applied, so skip the step.
        continue;
      }
      ASSERT_TRUE(a.ok()) << a.status() << " deleting " << xpath::ToString(u);
      ASSERT_TRUE(oracle->backend()->DeleteWhere(u).ok());
    }
    ASSERT_TRUE(oracle->ReannotateFull().ok());

    auto all = xpath::ParsePath("//*");
    ASSERT_TRUE(all.ok());
    auto ids = partial->backend()->EvaluateQuery(*all);
    auto oracle_ids = oracle->backend()->EvaluateQuery(*all);
    ASSERT_TRUE(ids.ok() && oracle_ids.ok());
    ASSERT_EQ(*ids, *oracle_ids) << "step " << step;
    for (UniversalId id : *ids) {
      auto a = partial->backend()->GetSign(id);
      auto b = oracle->backend()->GetSign(id);
      ASSERT_TRUE(a.ok() && b.ok())
          << "id " << id << " partial: " << a.status()
          << " oracle: " << b.status();
      ASSERT_EQ(*a, *b) << "node " << id << " at step " << step
                        << " (seed " << cfg.seed << ")";
    }
  }
}

std::vector<Config> MakeConfigs() {
  std::vector<Config> out;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (int b = 0; b < 3; ++b) out.push_back({seed, b});
  }
  return out;
}

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  static const char* const kNames[] = {"Native", "Row", "Column"};
  return std::string(kNames[info.param.backend]) + "Seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndBackends, ReannotationPropertyTest,
                         ::testing::ValuesIn(MakeConfigs()), ConfigName);

}  // namespace
}  // namespace xmlac::engine
