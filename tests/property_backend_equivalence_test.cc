// Property suite: the three backends are *observably identical* — for
// random policies and random documents, every Fig. 5 annotation set, every
// query result and every sign agrees across native XML, row store and
// column store.
//
// Two layers: a seeded differential sweep through the shared harness
// (testing/diff.h), whose failures print the seed plus a minimized repro,
// and an XMark-shaped structural test that pins the per-CombineOp and
// per-sign agreement explicitly.

#include <gtest/gtest.h>

#include <memory>

#include "engine/annotator.h"
#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "testing/diff.h"
#include "testing/generators.h"
#include "workload/coverage.h"
#include "workload/xmark.h"
#include "xpath/parser.h"

namespace xmlac::engine {
namespace {

namespace tst = xmlac::testing;

// The shared differential harness: oracle vs AccessController on all three
// backends, annotation sets, signs and request outcomes.  A failure message
// is the seed plus the shrunk instance, ready for xmlac_fuzz --replay.
class SeededAnnotationDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededAnnotationDiffTest, OracleAgreesOnAllBackends) {
  tst::InstanceOptions options;
  options.max_doc_nodes = 60;
  EXPECT_EQ(tst::RunSeededCheck(GetParam(), options, tst::AnnotationCheck()),
            "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededAnnotationDiffTest,
                         ::testing::Range<uint64_t>(1, 9));

class BackendEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalenceTest, AnnotationSetsAndSignsAgree) {
  uint64_t seed = GetParam();
  workload::XmarkGenerator gen;
  workload::XmarkOptions xopt;
  xopt.factor = 0.008;
  xopt.seed = seed;
  xml::Document doc = gen.Generate(xopt);
  auto dtd = workload::XmarkGenerator::ParseXmarkDtd();
  ASSERT_TRUE(dtd.ok());

  NativeXmlBackend native;
  RelationalOptions row_opt;
  row_opt.storage = reldb::StorageKind::kRowStore;
  RelationalBackend row(row_opt);
  RelationalOptions col_opt;
  col_opt.storage = reldb::StorageKind::kColumnStore;
  RelationalBackend column(col_opt);
  Backend* backends[] = {&native, &row, &column};
  for (Backend* b : backends) {
    ASSERT_TRUE(b->Load(*dtd, doc).ok());
  }

  workload::CoverageOptions copt;
  copt.target = 0.35 + 0.1 * static_cast<double>(seed % 4);
  copt.seed = seed * 3 + 1;
  auto policy = workload::GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(policy.ok());

  // Every CombineOp over every (ds, cr)-relevant rule subset agrees.
  std::vector<size_t> all_rules(policy->size());
  for (size_t i = 0; i < all_rules.size(); ++i) all_rules[i] = i;
  for (auto combine :
       {policy::CombineOp::kGrants, policy::CombineOp::kGrantsExceptDenies,
        policy::CombineOp::kDenies, policy::CombineOp::kDeniesExceptGrants}) {
    auto a = native.EvaluateAnnotationSet(*policy, all_rules, combine);
    auto b = row.EvaluateAnnotationSet(*policy, all_rules, combine);
    auto c = column.EvaluateAnnotationSet(*policy, all_rules, combine);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok())
        << a.status() << " " << b.status() << " " << c.status();
    EXPECT_EQ(*a, *b) << "combine " << static_cast<int>(combine);
    EXPECT_EQ(*a, *c) << "combine " << static_cast<int>(combine);
  }

  // Annotate everywhere, then signs agree on every element and random
  // queries return the same ids.
  for (Backend* b : backends) {
    ASSERT_TRUE(AnnotateFull(b, *policy).ok());
  }
  auto all = xpath::ParsePath("//*");
  ASSERT_TRUE(all.ok());
  auto ids = native.EvaluateQuery(*all);
  ASSERT_TRUE(ids.ok());
  for (UniversalId id : *ids) {
    char expected = *native.GetSign(id);
    EXPECT_EQ(*row.GetSign(id), expected) << id;
    EXPECT_EQ(*column.GetSign(id), expected) << id;
  }
  tst::RandomPathGenerator paths(doc, seed + 99);
  for (int i = 0; i < 25; ++i) {
    xpath::Path q = paths.Next();
    auto qa = native.EvaluateQuery(q);
    auto qb = row.EvaluateQuery(q);
    ASSERT_TRUE(qa.ok());
    if (!qb.ok() && qb.status().code() == StatusCode::kUnsupported) {
      continue;  // translator branch budget; nothing to compare
    }
    ASSERT_TRUE(qb.ok()) << qb.status() << " for " << xpath::ToString(q);
    EXPECT_EQ(*qa, *qb) << xpath::ToString(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace xmlac::engine
