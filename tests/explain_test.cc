#include <gtest/gtest.h>

#include "reldb/executor.h"
#include "shred/shredder.h"
#include "shred/xpath_to_sql.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xmlac::reldb {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dtd = xml::ParseDtd(testdata::kHospitalDtd);
    auto doc = xml::ParseDocument(testdata::kHospitalDoc);
    ASSERT_TRUE(dtd.ok() && doc.ok());
    mapping_ = std::make_unique<shred::ShredMapping>(*dtd);
    catalog_ = std::make_unique<Catalog>(StorageKind::kRowStore);
    ASSERT_TRUE(mapping_->CreateTables(catalog_.get()).ok());
    ASSERT_TRUE(
        shred::ShredToCatalog(*doc, *mapping_, catalog_.get(), '-').ok());
    exec_ = std::make_unique<Executor>(catalog_.get());
  }

  std::string Explain(std::string_view sql) {
    auto st = ParseSql(sql);
    EXPECT_TRUE(st.ok()) << st.status();
    auto plan = exec_->ExplainSelect(st->select);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.ok() ? *plan : "";
  }

  std::unique_ptr<shred::ShredMapping> mapping_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExplainTest, SingleTableScan) {
  std::string plan = Explain("SELECT p.id FROM patient p WHERE p.s = '-'");
  EXPECT_NE(plan.find("SCAN patient AS p (3 rows)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("FILTER p.s = '-'"), std::string::npos) << plan;
}

TEST_F(ExplainTest, HashJoinRecognized) {
  std::string plan = Explain(
      "SELECT t.id FROM patient p, treatment t WHERE p.id = t.pid");
  EXPECT_NE(plan.find("SCAN patient AS p"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HASH JOIN treatment AS t ON p.id = t.pid"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, CrossJoinFallsBackToNestedLoop) {
  std::string plan = Explain("SELECT p.id FROM patient p, psn q");
  EXPECT_NE(plan.find("NESTED LOOP psn AS q"), std::string::npos) << plan;
}

TEST_F(ExplainTest, NonEquiJoinIsCheck) {
  std::string plan = Explain(
      "SELECT p.id FROM patient p, psn q WHERE p.id < q.id");
  EXPECT_NE(plan.find("NESTED LOOP"), std::string::npos) << plan;
  EXPECT_NE(plan.find("CHECK p.id < q.id"), std::string::npos) << plan;
}

TEST_F(ExplainTest, CompoundShowsSetOps) {
  std::string plan = Explain(
      "SELECT p.id FROM patient p UNION SELECT t.id FROM treatment t "
      "EXCEPT SELECT r.id FROM regular r");
  EXPECT_NE(plan.find("UNION"), std::string::npos) << plan;
  EXPECT_NE(plan.find("EXCEPT"), std::string::npos) << plan;
  EXPECT_NE(plan.find("  SCAN treatment AS t"), std::string::npos) << plan;
}

TEST_F(ExplainTest, TranslatedAnnotationQueryExplains) {
  auto path = xpath::ParsePath("//patient[.//experimental]/name");
  ASSERT_TRUE(path.ok());
  auto tr = shred::TranslateXPath(*path, *mapping_);
  ASSERT_TRUE(tr.ok());
  auto plan = exec_->ExplainSelect(tr->query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("HASH JOIN"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("DISTINCT"), std::string::npos) << *plan;
}

TEST_F(ExplainTest, ErrorsSurface) {
  auto st = ParseSql("SELECT x.id FROM nosuch x");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(exec_->ExplainSelect(st->select).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace xmlac::reldb
