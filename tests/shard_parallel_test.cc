// Shard-parallel execution (common/shard.h): the exchange-style fan-out /
// order-preserving-merge layer must be invisible in results — byte-identical
// output for ANY shard count, on every path that shards (structural eval,
// bitmap combination, labeling, relational scans) — while the plumbing
// (PlanShards, ParallelFor grains, the worker ring pool) obeys its local
// contracts.

#include "common/shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "engine/access_controller.h"
#include "engine/native_backend.h"
#include "engine/relational_backend.h"
#include "obs/ring.h"
#include "workload/coverage.h"
#include "workload/hospital.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xpath/structural_eval.h"
#include "xpath/structural_index.h"

namespace xmlac {
namespace {

using engine::AccessController;
using engine::UniversalId;
using xml::NodeId;

// ----- PlanShards --------------------------------------------------------

TEST(PlanShardsTest, EmptyInputYieldsNoShards) {
  ShardConfig config;
  EXPECT_TRUE(PlanShards(0, config).empty());
}

TEST(PlanShardsTest, DisabledYieldsOneShard) {
  ShardConfig config;
  config.enabled = false;
  config.threads = 8;
  auto ranges = PlanShards(1000, config);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 1000u);
}

TEST(PlanShardsTest, BelowMinWorkStaysSerial) {
  ShardConfig config;
  config.threads = 8;
  config.min_work = 512;
  EXPECT_EQ(PlanShards(511, config).size(), 1u);
  EXPECT_GT(PlanShards(512, config).size(), 1u);
}

TEST(PlanShardsTest, MinWorkSentinelUsesCallSiteDefault) {
  ShardConfig config;
  config.threads = 8;
  config.min_work = 0;  // sentinel: the call site's default applies
  EXPECT_EQ(PlanShards(100, config, /*default_min_work=*/256).size(), 1u);
  EXPECT_GT(PlanShards(300, config, /*default_min_work=*/256).size(), 1u);
  // An explicit min_work overrides the default in both directions.
  config.min_work = 1;
  EXPECT_GT(PlanShards(100, config, /*default_min_work=*/256).size(), 1u);
}

TEST(PlanShardsTest, RangesAreContiguousAndCoverInput) {
  for (size_t n : {1u, 2u, 7u, 64u, 1000u, 4097u}) {
    for (size_t threads : {1u, 2u, 3u, 7u, 16u, 64u}) {
      ShardConfig config;
      config.threads = threads;
      config.min_work = 1;
      auto ranges = PlanShards(n, config);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(ranges.size(), std::min(threads, n));
      EXPECT_EQ(ranges.front().begin, 0u);
      EXPECT_EQ(ranges.back().end, n);
      for (size_t i = 0; i + 1 < ranges.size(); ++i) {
        EXPECT_EQ(ranges[i].end, ranges[i + 1].begin);
        EXPECT_GT(ranges[i].size(), 0u);
      }
    }
  }
}

// ----- ParallelFor grains ------------------------------------------------

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  for (size_t n : {0u, 1u, 7u, 100u, 1000u}) {
    for (size_t threads : {0u, 1u, 2u, 4u}) {
      for (size_t grain : {0u, 1u, 3u, 64u, 100000u}) {
        std::vector<std::atomic<int>> hits(n);
        ParallelFor(n, threads, grain, [&](size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads
                                       << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelForTest, SerialPathPreservesOrder) {
  // threads=1 must run in index order on the caller thread (no spawn).
  std::vector<size_t> order;
  ParallelFor(100, 1, 7, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

// ----- Worker ring pool --------------------------------------------------

TEST(WorkerRingPoolTest, AcquireReleaseCycle) {
  obs::EventRing a(64), b(64);
  obs::WorkerRingPool pool;
  pool.Add(&a);
  pool.Add(&b);
  obs::EventRing* r1 = pool.TryAcquire();
  obs::EventRing* r2 = pool.TryAcquire();
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_NE(r1, r2);
  EXPECT_EQ(pool.TryAcquire(), nullptr);  // dry
  pool.Release(r1);
  EXPECT_EQ(pool.TryAcquire(), r1);
  pool.Release(nullptr);  // no-op
}

TEST(WorkerRingPoolTest, ParallelForWorkersRecordIntoPoolRings) {
  // The satellite gap this closes: spans inside ParallelFor workers used to
  // vanish because workers had no ring.  With a pool installed, every body
  // invocation lands in SOME ring: the caller's own, or a claimed pool ring.
  constexpr size_t kN = 200;
  obs::EventRing caller_ring(1024);
  obs::EventRing pool_a(1024), pool_b(1024), pool_c(1024);
  obs::WorkerRingPool pool;
  pool.Add(&pool_a);
  pool.Add(&pool_b);
  pool.Add(&pool_c);
  const uint16_t name = obs::InternName("shard-test-event");
  {
    obs::ScopedRing ring_ctx(&caller_ring);
    obs::ScopedWorkerRingPool pool_ctx(&pool);
    ParallelFor(kN, /*threads=*/4, /*grain=*/1, [&](size_t i) {
      obs::EmitEvent(obs::EventType::kInstant, name, i);
    });
  }
  uint64_t total = caller_ring.appended() + pool_a.appended() +
                   pool_b.appended() + pool_c.appended();
  EXPECT_EQ(total, kN);
  // Drained events carry the payloads 0..kN-1 exactly once each.
  std::vector<obs::Event> events;
  for (obs::EventRing* r : {&caller_ring, &pool_a, &pool_b, &pool_c}) {
    EXPECT_EQ(r->Drain(&events), 0u);
  }
  std::set<uint64_t> args;
  for (const obs::Event& e : events) {
    EXPECT_EQ(e.name, name);
    args.insert(e.arg);
  }
  EXPECT_EQ(args.size(), kN);
}

// ----- Structural evaluation: sharded == serial == naive ------------------

xpath::Path MustParse(std::string_view expr) {
  auto p = xpath::ParsePath(expr);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

// Forced shard counts: results must be byte-identical for 1, 2, 7 and 16
// shards (min_work=1 engages the fan-out even on small contexts).
TEST(StructuralEvalShardTest, ShardCountsProduceIdenticalResults) {
  workload::XmarkGenerator gen;
  workload::XmarkOptions xopt;
  xopt.factor = 0.02;
  xopt.seed = 9;
  xml::Document doc = gen.Generate(xopt);
  xpath::StructuralIndex index(&doc);
  index.Publish();
  ASSERT_TRUE(index.ReadyFor(doc));
  const xpath::IndexVersion& version = *index.current();

  workload::QueryWorkloadOptions qopt;
  qopt.count = 40;
  qopt.seed = 31;
  std::vector<xpath::Path> queries = workload::GenerateQueries(doc, qopt);
  ASSERT_FALSE(queries.empty());
  for (const xpath::Path& q : queries) {
    std::vector<NodeId> naive = xpath::Evaluate(q, doc);
    std::vector<NodeId> serial = xpath::EvaluateStructural(q, doc, version);
    EXPECT_EQ(serial, naive) << xpath::ToString(q);
    for (size_t shards : {1u, 2u, 7u, 16u}) {
      ShardConfig config;
      config.threads = shards;
      config.min_work = 1;
      std::vector<NodeId> sharded =
          xpath::EvaluateStructural(q, doc, version, config);
      EXPECT_EQ(sharded, serial)
          << xpath::ToString(q) << " with " << shards << " shards";
    }
  }
}

TEST(StructuralEvalShardTest, EvaluateFromMatchesSerial) {
  workload::HospitalGenerator gen;
  workload::HospitalOptions hopt;
  hopt.departments = 3;
  hopt.patients_per_department = 40;
  xml::Document doc = gen.Generate(hopt);
  xpath::StructuralIndex index(&doc);
  index.Publish();
  const xpath::IndexVersion& version = *index.current();
  xpath::Path rel = MustParse("//patient/name");
  // Evaluate the relative tail from a few context nodes.
  std::vector<NodeId> contexts = xpath::Evaluate(MustParse("//dept"), doc);
  ASSERT_FALSE(contexts.empty());
  ShardConfig config;
  config.threads = 7;
  config.min_work = 1;
  for (NodeId ctx : contexts) {
    std::vector<NodeId> serial =
        xpath::EvaluateFromStructural(rel, doc, ctx, version);
    std::vector<NodeId> sharded =
        xpath::EvaluateFromStructural(rel, doc, ctx, version, config);
    EXPECT_EQ(sharded, serial);
  }
}

// ----- Labeling: sharded == serial ---------------------------------------

TEST(LabelingShardTest, ShardedLabelsAreByteIdentical) {
  workload::XmarkGenerator gen;
  workload::XmarkOptions xopt;
  xopt.factor = 0.02;
  xopt.seed = 5;
  xml::Document doc = gen.Generate(xopt);
  std::vector<xpath::IntervalLabel> serial = xpath::ComputeIntervalLabels(doc);
  for (size_t shards : {1u, 2u, 7u, 16u}) {
    ShardConfig config;
    config.threads = shards;
    config.min_work = 1;
    std::vector<xpath::IntervalLabel> sharded =
        xpath::ComputeIntervalLabels(doc, config);
    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i].start, serial[i].start) << "node " << i;
      EXPECT_EQ(sharded[i].end, serial[i].end) << "node " << i;
      EXPECT_EQ(sharded[i].level, serial[i].level) << "node " << i;
    }
  }
}

// ----- Controller end to end: shard on == shard off ----------------------

TEST(ControllerShardTest, SignsAndOutcomesMatchSerial) {
  workload::HospitalGenerator gen;
  workload::HospitalOptions hopt;
  hopt.departments = 3;
  hopt.patients_per_department = 30;
  xml::Document doc = gen.Generate(hopt);
  auto dtd = workload::HospitalGenerator::ParseHospitalDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  workload::CoverageOptions copt;
  copt.target = 0.4;
  auto policy = workload::GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(policy.ok()) << policy.status();

  auto make = [&](bool shard_on) {
    engine::ControllerOptions options;
    options.shard_parallel = shard_on;
    options.shard_threads = shard_on ? 7 : 0;
    auto ac = std::make_unique<AccessController>(
        std::make_unique<engine::NativeXmlBackend>(), options);
    EXPECT_TRUE(ac->LoadParsed(*dtd, doc).ok());
    EXPECT_TRUE(ac->SetPolicyParsed(*policy).ok());
    return ac;
  };
  auto sharded = make(true);
  auto serial = make(false);

  for (NodeId id : doc.AllElements()) {
    auto a = sharded->backend()->GetSign(static_cast<UniversalId>(id));
    auto b = serial->backend()->GetSign(static_cast<UniversalId>(id));
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) EXPECT_EQ(*a, *b) << "node " << id;
  }

  for (const char* q : {"//patient", "//patient/name", "//dept/staffinfo",
                        "//treatment", "/hospital/dept"}) {
    auto a = sharded->Query(q);
    auto b = serial->Query(q);
    ASSERT_EQ(a.ok(), b.ok()) << q;
    if (a.ok()) {
      EXPECT_EQ(a->granted, b->granted) << q;
      EXPECT_EQ(a->selected, b->selected) << q;
      EXPECT_EQ(a->accessible, b->accessible) << q;
    }
  }

  // Updates drive the sharded re-annotation + index rebuild paths.
  auto ua = sharded->Update("//patient/treatment");
  auto ub = serial->Update("//patient/treatment");
  ASSERT_EQ(ua.ok(), ub.ok());
  if (ua.ok()) EXPECT_EQ(ua->nodes_deleted, ub->nodes_deleted);
  for (NodeId id : doc.AllElements()) {
    auto a = sharded->backend()->GetSign(static_cast<UniversalId>(id));
    auto b = serial->backend()->GetSign(static_cast<UniversalId>(id));
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) EXPECT_EQ(*a, *b) << "post-update node " << id;
  }
}

// ----- Relational backend: sharded scans == serial -----------------------

TEST(RelationalShardTest, AnnotationSetsMatchSerial) {
  workload::HospitalGenerator gen;
  workload::HospitalOptions hopt;
  hopt.departments = 2;
  hopt.patients_per_department = 40;
  xml::Document doc = gen.Generate(hopt);
  auto dtd = workload::HospitalGenerator::ParseHospitalDtd();
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  workload::CoverageOptions copt;
  copt.target = 0.5;
  auto policy = workload::GenerateCoveragePolicy(doc, copt);
  ASSERT_TRUE(policy.ok()) << policy.status();
  std::vector<size_t> all_rules(policy->size());
  for (size_t i = 0; i < all_rules.size(); ++i) all_rules[i] = i;

  for (auto storage :
       {reldb::StorageKind::kRowStore, reldb::StorageKind::kColumnStore}) {
    engine::RelationalOptions ropt;
    ropt.storage = storage;
    auto serial = std::make_unique<engine::RelationalBackend>(ropt);
    ASSERT_TRUE(serial->Load(*dtd, doc).ok());
    auto sharded = std::make_unique<engine::RelationalBackend>(ropt);
    ShardConfig config;
    config.threads = 7;
    config.min_work = 1;  // engage even on small tables
    sharded->SetShardConfig(config);
    ASSERT_TRUE(sharded->Load(*dtd, doc).ok());

    for (policy::CombineOp combine :
         {policy::CombineOp::kGrants, policy::CombineOp::kGrantsExceptDenies,
          policy::CombineOp::kDenies, policy::CombineOp::kDeniesExceptGrants}) {
      auto a = sharded->EvaluateAnnotationSet(*policy, all_rules, combine);
      auto b = serial->EvaluateAnnotationSet(*policy, all_rules, combine);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) EXPECT_EQ(*a, *b);
    }

    // Sharded SetSigns gather == serial (signs land identically).
    auto targets = serial->EvaluateAnnotationSet(
        *policy, all_rules, policy::CombineOp::kGrants);
    ASSERT_TRUE(targets.ok());
    ASSERT_TRUE(sharded->SetSigns(*targets, '+').ok());
    ASSERT_TRUE(serial->SetSigns(*targets, '+').ok());
    for (UniversalId id : *targets) {
      auto a = sharded->GetSign(id);
      auto b = serial->GetSign(id);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) EXPECT_EQ(*a, *b);
    }
  }
}

}  // namespace
}  // namespace xmlac
