// The correctness-tooling library itself: generator determinism, the
// repro dump/load round-trip, greedy shrinking (including the acceptance
// bar: an injected semantics bug minimizes to <= 10 document nodes and
// <= 3 rules), and a small clean run of the stateful serve fuzzer.

#include <gtest/gtest.h>

#include <string>

#include "testing/diff.h"
#include "testing/generators.h"
#include "testing/serve_fuzz.h"
#include "testing/shrink.h"
#include "xml/serializer.h"

namespace xmlac::testing {
namespace {

TEST(GeneratorTest, DeterministicInSeed) {
  InstanceOptions options;
  options.seed = 99;
  Instance a = GenerateInstance(options);
  Instance b = GenerateInstance(options);
  EXPECT_EQ(xml::Serialize(a.doc), xml::Serialize(b.doc));
  EXPECT_EQ(a.policy.ToString(), b.policy.ToString());
  EXPECT_EQ(a.dtd_text, b.dtd_text);
  ASSERT_EQ(a.updates.size(), b.updates.size());
  for (size_t i = 0; i < a.updates.size(); ++i) {
    EXPECT_EQ(a.updates[i].xpath, b.updates[i].xpath);
    EXPECT_EQ(a.updates[i].fragment_xml, b.updates[i].fragment_xml);
  }

  options.seed = 100;
  Instance c = GenerateInstance(options);
  EXPECT_NE(xml::Serialize(a.doc) + a.policy.ToString(),
            xml::Serialize(c.doc) + c.policy.ToString());
}

TEST(GeneratorTest, InstancesAreWellFormed) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    InstanceOptions options;
    options.seed = seed;
    Instance instance = GenerateInstance(options);
    EXPECT_GE(instance.doc.alive_count(), 1u);
    EXPECT_LE(static_cast<int>(instance.doc.AllElements().size()),
              options.max_doc_nodes);
    EXPECT_GE(instance.policy.size(), 1u);
    EXPECT_LE(static_cast<int>(instance.policy.size()), options.max_rules);
    EXPECT_TRUE(instance.dtd.HasElement("e0"));
  }
}

TEST(ReproTest, WriteLoadRoundTrip) {
  InstanceOptions options;
  options.seed = 5;
  options.max_updates = 3;
  Instance instance = GenerateInstance(options);
  std::string dir = ::testing::TempDir() + "xmlac_repro_roundtrip";
  ASSERT_TRUE(WriteRepro(instance, dir).ok());
  auto loaded = LoadRepro(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(xml::Serialize(loaded->doc), xml::Serialize(instance.doc));
  EXPECT_EQ(loaded->policy.ToString(), instance.policy.ToString());
  EXPECT_EQ(loaded->dtd_text, instance.dtd_text);
  EXPECT_EQ(loaded->seed, instance.seed);
  ASSERT_EQ(loaded->updates.size(), instance.updates.size());
  for (size_t i = 0; i < instance.updates.size(); ++i) {
    EXPECT_EQ(loaded->updates[i].kind, instance.updates[i].kind);
    EXPECT_EQ(loaded->updates[i].xpath, instance.updates[i].xpath);
    EXPECT_EQ(loaded->updates[i].fragment_xml,
              instance.updates[i].fragment_xml);
  }
}

TEST(ShrinkTest, PassingInstanceIsReturnedUnchanged) {
  InstanceOptions options;
  options.seed = 3;
  Instance instance = GenerateInstance(options);
  ShrinkResult result =
      Shrink(instance, [](const Instance&) { return std::string(); });
  EXPECT_TRUE(result.failure.empty());
  EXPECT_EQ(result.steps, 0);
}

// The acceptance bar: flip the engine-side conflict resolution, fuzz until
// the differential check fires, shrink, and the repro must be tiny.
TEST(ShrinkTest, InjectedCrBugMinimizesToTinyRepro) {
  DiffOptions diff;
  diff.backends = {BackendKind::kNative};  // the bug is backend-independent
  diff.bug = InjectedBug::kFlipCr;
  CheckFn check = AnnotationCheck(diff);

  bool found = false;
  for (uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    InstanceOptions options;
    options.seed = seed;
    Instance instance = GenerateInstance(options);
    std::string failure = check(instance);
    if (failure.empty()) continue;
    found = true;

    ShrinkResult shrunk = Shrink(instance, check);
    EXPECT_FALSE(shrunk.failure.empty());
    EXPECT_LE(shrunk.instance.doc.alive_count(), 10u)
        << FormatInstance(shrunk.instance);
    EXPECT_LE(shrunk.instance.policy.size(), 3u)
        << FormatInstance(shrunk.instance);

    // The minimized repro survives a dump/load round-trip and still fails.
    std::string dir = ::testing::TempDir() + "xmlac_repro_shrunk";
    ASSERT_TRUE(WriteRepro(shrunk.instance, dir).ok());
    auto loaded = LoadRepro(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_FALSE(check(*loaded).empty());
  }
  EXPECT_TRUE(found)
      << "no seed in 1..40 exposed the flipped conflict resolution";
}

TEST(ShrinkTest, InjectedDsBugIsCaughtToo) {
  DiffOptions diff;
  diff.backends = {BackendKind::kNative};
  diff.bug = InjectedBug::kFlipDs;
  CheckFn check = AnnotationCheck(diff);
  InstanceOptions options;
  options.seed = 1;
  Instance instance = GenerateInstance(options);
  std::string failure = check(instance);
  ASSERT_FALSE(failure.empty());
  ShrinkResult shrunk = Shrink(instance, check);
  EXPECT_LE(shrunk.instance.doc.alive_count(), 10u);
  EXPECT_LE(shrunk.instance.policy.size(), 3u);
}

TEST(DiffTest, CleanInstancesPassAllChecks) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    InstanceOptions options;
    options.seed = seed;
    options.max_doc_nodes = 40;
    Instance instance = GenerateInstance(options);
    EXPECT_EQ(CheckAll(instance), "") << "seed " << seed;
  }
}

TEST(ServeFuzzTest, SmallCleanRun) {
  ServeFuzzOptions options;
  options.seed = 2;
  options.readers = 2;
  options.reads_per_reader = 20;
  options.update_ops = 4;
  options.subjects = 2;
  options.workers = 2;
  ServeFuzzResult result = RunServeFuzz(options);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.reads_checked, 0u);
  EXPECT_GE(result.final_epoch, 1u);
}

}  // namespace
}  // namespace xmlac::testing
