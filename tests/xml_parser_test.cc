#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace xmlac::xml {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  auto r = ParseDocument("<root/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->node(r->root()).label, "root");
  EXPECT_EQ(r->alive_count(), 1u);
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto r = ParseDocument("<a><b>hello</b><c><d>x</d></c></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  const Document& doc = *r;
  auto elements = doc.AllElements();
  ASSERT_EQ(elements.size(), 4u);
  NodeId b = elements[1];
  EXPECT_EQ(doc.node(b).label, "b");
  EXPECT_EQ(doc.DirectText(b), "hello");
}

TEST(XmlParserTest, Attributes) {
  auto r = ParseDocument(R"(<item id="42" name='x y'/>)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r->GetAttribute(r->root(), "id"), "42");
  EXPECT_EQ(*r->GetAttribute(r->root(), "name"), "x y");
}

TEST(XmlParserTest, DuplicateAttributeRejected) {
  auto r = ParseDocument(R"(<item a="1" a="2"/>)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, EntityDecoding) {
  auto r = ParseDocument("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->DirectText(r->root()), "<tag> & \"q\" 's'");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  auto r = ParseDocument("<a>&#65;&#x42;</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->DirectText(r->root()), "AB");
}

TEST(XmlParserTest, CommentsAndPisSkipped) {
  auto r = ParseDocument(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->AllElements().size(), 2u);
}

TEST(XmlParserTest, DoctypeSkipped) {
  auto r = ParseDocument(
      "<!DOCTYPE hospital [<!ELEMENT hospital (dept+)>]><hospital><dept/></hospital>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->node(r->root()).label, "hospital");
}

TEST(XmlParserTest, Cdata) {
  auto r = ParseDocument("<a><![CDATA[<not a tag> & raw]]></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->DirectText(r->root()), "<not a tag> & raw");
}

TEST(XmlParserTest, WhitespaceOnlyTextDropped) {
  auto r = ParseDocument("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  for (NodeId id = 0; id < r->size(); ++id) {
    EXPECT_NE(r->node(id).kind, NodeKind::kText);
  }
}

TEST(XmlParserTest, MismatchedTagsRejected) {
  auto r = ParseDocument("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, UnterminatedElementRejected) {
  EXPECT_FALSE(ParseDocument("<a><b>").ok());
  EXPECT_FALSE(ParseDocument("<a").ok());
  EXPECT_FALSE(ParseDocument("").ok());
}

TEST(XmlParserTest, TrailingContentRejected) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
  EXPECT_FALSE(ParseDocument("<a/>junk").ok());
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseDocument("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

TEST(XmlParserTest, RoundTripThroughSerializer) {
  const char* kInput =
      R"(<hospital><dept><patients><patient sign="+"><psn>033</psn><name>john doe</name></patient></patients></dept></hospital>)";
  auto r = ParseDocument(kInput);
  ASSERT_TRUE(r.ok()) << r.status();
  std::string out = Serialize(*r);
  auto r2 = ParseDocument(out);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(Serialize(*r2), out);
  EXPECT_EQ(out, kInput);
}

}  // namespace
}  // namespace xmlac::xml
