#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "obs/chrome_export.h"

namespace xmlac::obs {
namespace {

// --- Minimal JSON syntax checker (same shape as trace_test's) ---------------
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view text_;
  size_t pos_ = 0;
};

constexpr uint8_t kQuery =
    static_cast<uint8_t>(RequestClass::kQueryNative);
constexpr uint8_t kUpdate =
    static_cast<uint8_t>(RequestClass::kUpdateNative);

// One request with a two-level span tree, emitted onto `ring`.
void EmitRequest(EventRing* ring, uint64_t latency_us, uint8_t klass,
                 uint16_t outer, uint16_t inner) {
  ring->Append(EventType::kRequestBegin, 0, 0, klass);
  ring->Append(EventType::kSpanBegin, outer, 0);
  ring->Append(EventType::kSpanBegin, inner, 0);
  ring->Append(EventType::kCounter, InternName("frt.count"), 3);
  ring->Append(EventType::kSpanEnd, inner, 0);
  ring->Append(EventType::kSpanEnd, outer, 0);
  ring->Append(EventType::kRequestEnd, 0, latency_us, klass);
}

TEST(FlightRecorderTest, AssemblesRequestSpanTree) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1;  // retain everything with latency >= 1
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("worker-0");
  uint16_t outer = InternName("frt.outer");
  uint16_t inner = InternName("frt.inner");
  EmitRequest(ring, 250, kQuery, outer, inner);
  recorder.Drain();

  std::vector<RetainedTrace> traces = recorder.RetainedTraces();
  ASSERT_EQ(traces.size(), 1u);
  const RetainedTrace& t = traces[0];
  EXPECT_EQ(t.klass, RequestClass::kQueryNative);
  EXPECT_EQ(t.latency_us, 250u);
  EXPECT_EQ(t.ring, 0u);
  // Spans complete innermost-first; depths reflect nesting.
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[0].name, inner);
  EXPECT_EQ(t.spans[0].depth, 1u);
  EXPECT_EQ(t.spans[1].name, outer);
  EXPECT_EQ(t.spans[1].depth, 0u);
  EXPECT_LE(t.spans[1].start_ns, t.spans[0].start_ns);
  ASSERT_EQ(t.counters.size(), 1u);
  EXPECT_EQ(NameOf(t.counters[0].first), "frt.count");
  EXPECT_EQ(t.counters[0].second, 3u);
}

TEST(FlightRecorderTest, FixedThresholdDropsFastRequests) {
  RecorderOptions opt;
  opt.slow_threshold_us = 100;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  EmitRequest(ring, 50, kQuery, s, s);   // fast: histogram only
  EmitRequest(ring, 150, kQuery, s, s);  // slow: retained
  recorder.Drain();
  RecorderHealth h = recorder.Health();
  EXPECT_EQ(h.requests_seen, 2u);
  std::vector<RetainedTrace> traces = recorder.RetainedTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].latency_us, 150u);
  // Both latencies landed in the class histogram regardless of retention.
  size_t qn = static_cast<size_t>(RequestClass::kQueryNative);
  EXPECT_EQ(h.latency_us[qn].count, 2u);
  EXPECT_EQ(h.latency_us[qn].min, 50u);
  EXPECT_EQ(h.latency_us[qn].max, 150u);
}

TEST(FlightRecorderTest, ClassesKeepSeparateHistograms) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1000000;  // retain nothing
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  EmitRequest(ring, 10, kQuery, s, s);
  EmitRequest(ring, 20, kQuery, s, s);
  EmitRequest(ring, 999, kUpdate, s, s);
  recorder.Drain();
  RecorderHealth h = recorder.Health();
  EXPECT_EQ(h.latency_us[static_cast<size_t>(RequestClass::kQueryNative)].count,
            2u);
  const HistogramData& up =
      h.latency_us[static_cast<size_t>(RequestClass::kUpdateNative)];
  EXPECT_EQ(up.count, 1u);
  EXPECT_EQ(up.max, 999u);
  EXPECT_TRUE(recorder.RetainedTraces().empty());
}

TEST(FlightRecorderTest, RetainedTracesAreBoundedOldestFirstEviction) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1;
  opt.max_retained_traces = 3;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  for (uint64_t i = 1; i <= 10; ++i) EmitRequest(ring, i, kQuery, s, s);
  recorder.Drain();
  std::vector<RetainedTrace> traces = recorder.RetainedTraces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].latency_us, 8u);  // 1..7 evicted
  EXPECT_EQ(traces[2].latency_us, 10u);
  EXPECT_EQ(recorder.Health().evicted_traces, 7u);
}

TEST(FlightRecorderTest, AdaptiveModeRetainsEverythingUntilWarm) {
  RecorderOptions opt;
  opt.slow_threshold_us = 0;  // adaptive
  opt.adaptive_warmup = 4;
  opt.adaptive_percentile = 0.99;
  opt.max_retained_traces = 100;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  // Warmup phase: all retained (the last lands in the tail anyway).
  for (uint64_t i = 0; i < 3; ++i) EmitRequest(ring, 10, kQuery, s, s);
  EmitRequest(ring, 1000, kQuery, s, s);
  recorder.Drain();
  EXPECT_EQ(recorder.RetainedTraces().size(), 4u);
  // Warm: typical requests sit far below the trailing p99 (pinned near the
  // 1000us outlier) and are NOT retained; a new extreme one is.
  for (uint64_t i = 0; i < 20; ++i) EmitRequest(ring, 10, kQuery, s, s);
  recorder.Drain();
  EXPECT_EQ(recorder.RetainedTraces().size(), 4u);
  EmitRequest(ring, 100000, kQuery, s, s);
  recorder.Drain();
  EXPECT_EQ(recorder.RetainedTraces().size(), 5u);
  EXPECT_EQ(recorder.Health().requests_seen, 25u);
}

TEST(FlightRecorderTest, EpochAndQueueEventsFoldIntoHealth) {
  FlightRecorder recorder;
  EventRing* ring = recorder.AddRing("writer");
  uint16_t q = InternName("frt.queue");
  ring->Append(EventType::kQueueDepth, q, 5);
  ring->Append(EventType::kEpochPublish, 0, 7);
  ring->Append(EventType::kQueueDepth, q, 2);
  ring->Append(EventType::kEpochPublish, 0, 9);
  recorder.Drain();
  RecorderHealth h = recorder.Health();
  EXPECT_EQ(h.last_epoch, 9u);
  ASSERT_TRUE(h.queues.count("frt.queue"));
  EXPECT_EQ(h.queues["frt.queue"].depth, 2u);
  EXPECT_EQ(h.queues["frt.queue"].watermark, 5u);
}

TEST(FlightRecorderTest, LostEndEventAbandonsHalfRequest) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  // Begin without end (end lost to an overwrite), then a clean request.
  ring->Append(EventType::kRequestBegin, 0, 0, kQuery);
  ring->Append(EventType::kSpanBegin, s, 0);
  EmitRequest(ring, 42, kQuery, s, s);
  recorder.Drain();
  std::vector<RetainedTrace> traces = recorder.RetainedTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].latency_us, 42u);
  EXPECT_EQ(traces[0].spans.size(), 2u);  // only the clean request's spans
}

TEST(FlightRecorderTest, SpanCapCountsDroppedSpans) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1;
  opt.max_trace_spans = 2;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  ring->Append(EventType::kRequestBegin, 0, 0, kQuery);
  for (int i = 0; i < 5; ++i) {
    ring->Append(EventType::kSpanBegin, s, 0);
    ring->Append(EventType::kSpanEnd, s, 0);
  }
  ring->Append(EventType::kRequestEnd, 0, 99, kQuery);
  recorder.Drain();
  std::vector<RetainedTrace> traces = recorder.RetainedTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), 2u);
  EXPECT_EQ(traces[0].dropped_spans, 3u);
}

TEST(ChromeExportTest, TraceJsonIsValidAndNamesResolve) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("worker-0");
  uint16_t outer = InternName("frt.chrome.outer");
  uint16_t inner = InternName("frt.chrome.inner");
  EmitRequest(ring, 123, kQuery, outer, inner);
  recorder.Drain();
  std::string json =
      ChromeTraceJson(recorder.RetainedTraces(), recorder.RingLabels());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("frt.chrome.outer"), std::string::npos);
  EXPECT_NE(json.find("frt.chrome.inner"), std::string::npos);
  EXPECT_NE(json.find("request query.native"), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(ChromeExportTest, EmptyRecorderStillExportsValidJson) {
  FlightRecorder recorder;
  std::string json =
      ChromeTraceJson(recorder.RetainedTraces(), recorder.RingLabels());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(ChromeExportTest, HealthTextIsFlatKeyValueLines) {
  RecorderOptions opt;
  opt.slow_threshold_us = 1;
  FlightRecorder recorder(opt);
  EventRing* ring = recorder.AddRing("w");
  uint16_t s = InternName("frt.s");
  EmitRequest(ring, 64, kQuery, s, s);
  recorder.Drain();
  std::string text = HealthToText(recorder.Health());
  EXPECT_NE(text.find("obs.ring.appended "), std::string::npos);
  EXPECT_NE(text.find("obs.ring.dropped 0"), std::string::npos);
  EXPECT_NE(text.find("obs.recorder.requests_seen 1"), std::string::npos);
  EXPECT_NE(text.find("latency.query.native.count 1"), std::string::npos);
  EXPECT_NE(text.find("latency.query.native.p50_us 64"), std::string::npos);
  // Every line is exactly "key value".
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "text must be newline-terminated";
    std::string line = text.substr(start, end - start);
    size_t space = line.find(' ');
    EXPECT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind(' '), space) << line;
    start = end + 1;
  }
}

}  // namespace
}  // namespace xmlac::obs
