// NodeBitmap sign algebra and the RuleScopeCache epoch protocol: exact-epoch
// hits, no-downgrade inserts, promotion of non-triggered entries, and the
// logical-eviction rules that keep parallel subjects from clobbering each
// other (docs/performance.md).  Plus the fleet-level property the cache
// exists for: subjects of a MultiSubjectController share rule bitmaps and
// still answer exactly like an uncached fleet.

#include "engine/rule_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/multi_subject.h"
#include "engine/native_backend.h"
#include "engine/node_bitmap.h"

namespace xmlac::engine {
namespace {

// ---------------------------------------------------------------------------
// NodeBitmap: the Table 2 / Fig. 5 set algebra as word-wise bit operations

TEST(NodeBitmapTest, SetTestCountAndGrowth) {
  NodeBitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_FALSE(bm.Test(0));
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);   // forces a second word
  bm.Set(500);  // grows well past the current size
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(500));
  EXPECT_FALSE(bm.Test(65));
  EXPECT_FALSE(bm.Test(100000));  // out of range reads as clear
  EXPECT_EQ(bm.Count(), 4u);
  EXPECT_EQ(bm.ToIds(), (std::vector<UniversalId>{0, 63, 64, 500}));
  bm.Clear();
  EXPECT_TRUE(bm.Empty());
}

TEST(NodeBitmapTest, UnionIsFig5Union) {
  NodeBitmap a = NodeBitmap::FromIds({1, 2, 70});
  NodeBitmap b = NodeBitmap::FromIds({2, 3, 200});
  a.Union(b);
  EXPECT_EQ(a.ToIds(), (std::vector<UniversalId>{1, 2, 3, 70, 200}));
}

TEST(NodeBitmapTest, SubtractIsFig5Except) {
  NodeBitmap a = NodeBitmap::FromIds({1, 2, 70, 200});
  NodeBitmap b = NodeBitmap::FromIds({2, 200, 300});
  a.Subtract(b);
  EXPECT_EQ(a.ToIds(), (std::vector<UniversalId>{1, 70}));
}

TEST(NodeBitmapTest, IntersectAndSignDiff) {
  NodeBitmap a = NodeBitmap::FromIds({1, 2, 70, 200});
  NodeBitmap b = NodeBitmap::FromIds({2, 70, 300});
  NodeBitmap i = a;
  i.Intersect(b);
  EXPECT_EQ(i.ToIds(), (std::vector<UniversalId>{2, 70}));
  // The sign diff: set in a, clear in b — exactly the nodes to re-sign.
  std::vector<UniversalId> diff;
  a.DifferenceInto(b, &diff);
  EXPECT_EQ(diff, (std::vector<UniversalId>{1, 200}));
}

// ---------------------------------------------------------------------------
// RuleScopeCache: the epoch protocol

RuleScopeCache::BitmapPtr Bitmap(std::vector<UniversalId> ids) {
  return std::make_shared<const NodeBitmap>(NodeBitmap::FromIds(ids));
}

TEST(RuleScopeCacheTest, HitsOnlyOnExactEpoch) {
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Insert("xmldb", "//a", e, Bitmap({1, 2}));
  ASSERT_NE(cache.Lookup("xmldb", "//a", e), nullptr);
  EXPECT_EQ(cache.Lookup("xmldb", "//a", e + 1), nullptr);  // future epoch
  EXPECT_EQ(cache.Lookup("xmldb", "//b", e), nullptr);      // other path
  EXPECT_EQ(cache.Lookup("reldb/row", "//a", e), nullptr);  // other store
  // A forgotten invalidation degrades to a miss, never a stale hit.
  cache.AdvanceEpoch();
  EXPECT_EQ(cache.Lookup("xmldb", "//a", cache.epoch()), nullptr);
}

TEST(RuleScopeCacheTest, InsertNeverDowngrades) {
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Insert("xmldb", "//a", e + 1, Bitmap({7}));
  // A straggler finishing an old computation must not replace newer state.
  cache.Insert("xmldb", "//a", e, Bitmap({1}));
  auto hit = cache.Lookup("xmldb", "//a", e + 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->Test(7));
  EXPECT_EQ(cache.Lookup("xmldb", "//a", e), nullptr);
}

TEST(RuleScopeCacheTest, PromoteCarriesNonTriggeredEntryAcrossTheEpoch) {
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Insert("xmldb", "//a", e, Bitmap({1, 2}));
  uint64_t post = cache.AdvanceEpoch();
  cache.Promote("xmldb", "//a", post);
  auto hit = cache.Lookup("xmldb", "//a", post);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Count(), 2u);
  // Promotion is one step only: an entry two epochs behind stays behind.
  uint64_t later = cache.AdvanceEpoch();
  cache.AdvanceEpoch();
  cache.Promote("xmldb", "//a", later + 1);
  EXPECT_EQ(cache.Lookup("xmldb", "//a", later + 1), nullptr);
}

TEST(RuleScopeCacheTest, EvictionIsLogicalForPreEpochEntries) {
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Insert("xmldb", "//a", e, Bitmap({1}));
  uint64_t post = cache.AdvanceEpoch();
  cache.Evict("xmldb", "//a", post);
  // Retired, not erased: a slow subject still snapshotting the pre-update
  // scope at the old epoch gets its hit...
  EXPECT_NE(cache.Lookup("xmldb", "//a", e), nullptr);
  // ...but the entry can never be promoted past the update.
  cache.Promote("xmldb", "//a", post);
  EXPECT_EQ(cache.Lookup("xmldb", "//a", post), nullptr);
}

TEST(RuleScopeCacheTest, EvictErasesPromotedButKeepsFreshInserts) {
  // Two subjects disagree about whether an update triggers a shared rule
  // (their dependency closures differ).  Whatever the interleaving, evict
  // must win over promote, while a fresh post-update recomputation is kept.
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Insert("xmldb", "//a", e, Bitmap({1}));
  uint64_t post = cache.AdvanceEpoch();
  // promote-then-evict: the carried-over bitmap must go.
  cache.Promote("xmldb", "//a", post);
  cache.Evict("xmldb", "//a", post);
  EXPECT_EQ(cache.Lookup("xmldb", "//a", post), nullptr);
  // A sibling's fresh recomputation at the post epoch survives eviction.
  cache.Insert("xmldb", "//a", post, Bitmap({2}));
  cache.Evict("xmldb", "//a", post);
  auto hit = cache.Lookup("xmldb", "//a", post);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->Test(2));
}

TEST(RuleScopeCacheTest, InsertClearsRetirement) {
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Insert("xmldb", "//a", e, Bitmap({1}));
  uint64_t post = cache.AdvanceEpoch();
  cache.Evict("xmldb", "//a", post);
  cache.Insert("xmldb", "//a", post, Bitmap({2}));
  // The recomputed entry is a first-class citizen again: promotable.
  uint64_t next = cache.AdvanceEpoch();
  cache.Promote("xmldb", "//a", next);
  EXPECT_NE(cache.Lookup("xmldb", "//a", next), nullptr);
}

TEST(RuleScopeCacheTest, StatsAndClear) {
  RuleScopeCache cache;
  uint64_t e = cache.epoch();
  cache.Lookup("xmldb", "//a", e);  // miss
  cache.Insert("xmldb", "//a", e, Bitmap({1}));
  cache.Lookup("xmldb", "//a", e);  // hit
  uint64_t post = cache.AdvanceEpoch();
  cache.Evict("xmldb", "//a", post);
  RuleScopeCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Fleet-level sharing: cached and uncached fleets answer identically

constexpr char kDtd[] =
    "<!ELEMENT r (a*, b*)>\n"
    "<!ELEMENT a (#PCDATA)>\n"
    "<!ELEMENT b (#PCDATA)>\n";
constexpr char kXml[] = "<r><a>1</a><a>2</a><b>3</b><b>4</b></r>";
constexpr char kPolicy[] = "default deny\nallow //a\ndeny //b\n";

std::unique_ptr<Backend> NativeFactory() {
  return std::make_unique<NativeXmlBackend>();
}

void ExpectSameAnswers(MultiSubjectController& cached,
                       MultiSubjectController& plain) {
  for (const std::string& subject : cached.SubjectNames()) {
    for (const char* q : {"//a", "//b", "/r"}) {
      auto rc = cached.Query(subject, q);
      auto rp = plain.Query(subject, q);
      ASSERT_EQ(rc.ok(), rp.ok()) << subject << " " << q;
      if (!rc.ok()) continue;
      EXPECT_EQ(rc->ids, rp->ids) << subject << " " << q;
    }
  }
}

TEST(MultiSubjectCacheTest, SubjectsShareBitmapsAndMatchUncachedFleet) {
  MultiSubjectOptions on;
  on.enable_rule_cache = true;
  MultiSubjectOptions off;
  off.enable_rule_cache = false;
  MultiSubjectController cached(NativeFactory, on);
  MultiSubjectController plain(NativeFactory, off);
  ASSERT_TRUE(cached.Load(kDtd, kXml).ok());
  ASSERT_TRUE(plain.Load(kDtd, kXml).ok());
  for (const char* subject : {"s1", "s2", "s3"}) {
    ASSERT_TRUE(cached.AddSubject(subject, kPolicy).ok());
    ASSERT_TRUE(plain.AddSubject(subject, kPolicy).ok());
  }
  // Subjects share rule resource paths, so only the first annotation pays
  // for evaluation — the rest replay bitmaps.
  RuleScopeCache::Stats stats = cached.rule_cache().GetStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  ExpectSameAnswers(cached, plain);

  // A broadcast update drives the trigger-based maintenance (evictions for
  // triggered rules, promotions for the rest) and must keep the fleets in
  // lockstep.
  ASSERT_TRUE(cached.Update("//b").ok());
  ASSERT_TRUE(plain.Update("//b").ok());
  stats = cached.rule_cache().GetStats();
  EXPECT_GT(stats.evictions + stats.promotions, 0u);
  ExpectSameAnswers(cached, plain);
}

}  // namespace
}  // namespace xmlac::engine
