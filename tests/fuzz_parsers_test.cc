// Robustness suite: every parser must reject arbitrary garbage and mutated
// valid inputs with a Status — never crash, hang, or accept nonsense that
// then breaks downstream invariants.  Garbage and mutation come from the
// shared helpers in testing/generators.h, so the corpora here and in
// xmlac_fuzz stay in sync.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "policy/policy.h"
#include "reldb/sql_parser.h"
#include "testing/generators.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/schema_graph.h"
#include "xml/serializer.h"
#include "xmldb/xquery.h"
#include "xpath/parser.h"

namespace xmlac {
namespace {

using testing::MutateText;
using testing::RandomGarbage;

class FuzzParsersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzParsersTest, XmlParserNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    auto r = xml::ParseDocument(RandomGarbage(rng, 200));
    if (r.ok()) {
      // Whatever was accepted must serialize and re-parse.
      auto again = xml::ParseDocument(xml::Serialize(*r));
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
  for (int i = 0; i < 200; ++i) {
    auto r = xml::ParseDocument(MutateText(rng, testdata::kHospitalDoc));
    if (r.ok()) {
      EXPECT_TRUE(xml::ParseDocument(xml::Serialize(*r)).ok());
    }
  }
}

TEST_P(FuzzParsersTest, DtdParserNeverCrashes) {
  Random rng(GetParam() + 10);
  for (int i = 0; i < 300; ++i) {
    (void)xml::ParseDtd(RandomGarbage(rng, 160));
  }
  for (int i = 0; i < 200; ++i) {
    auto r = xml::ParseDtd(MutateText(rng, testdata::kHospitalDtd));
    if (r.ok()) {
      // Accepted DTDs must build a schema graph without issue.
      xml::SchemaGraph g(*r);
      (void)g.IsRecursive();
    }
  }
}

TEST_P(FuzzParsersTest, XPathParserNeverCrashes) {
  Random rng(GetParam() + 20);
  for (int i = 0; i < 500; ++i) {
    auto r = xpath::ParsePath(RandomGarbage(rng, 80));
    if (r.ok()) {
      // Accepted paths must round-trip through ToString.
      auto again = xpath::ParsePath(xpath::ToString(*r));
      EXPECT_TRUE(again.ok())
          << again.status() << " for " << xpath::ToString(*r);
      EXPECT_TRUE(xpath::StructurallyEqual(*r, *again));
    }
  }
  for (int i = 0; i < 300; ++i) {
    (void)xpath::ParsePath(
        MutateText(rng, "//patient[.//experimental and name=\"x\"]/psn"));
  }
}

TEST_P(FuzzParsersTest, SqlParserNeverCrashes) {
  Random rng(GetParam() + 30);
  for (int i = 0; i < 400; ++i) {
    (void)reldb::ParseSql(RandomGarbage(rng, 160));
    (void)reldb::ParseSqlScript(RandomGarbage(rng, 160));
  }
  const char* kValid =
      "SELECT p.id FROM patients ps, patient p "
      "WHERE ps.id = p.pid AND p.v <> 'x';";
  for (int i = 0; i < 300; ++i) {
    (void)reldb::ParseSql(MutateText(rng, kValid));
  }
}

TEST_P(FuzzParsersTest, SqlScriptParserNeverCrashesOnMutations) {
  Random rng(GetParam() + 60);
  // Multi-statement script with DDL, inserts and a compound select, so
  // mutations land in every statement family the script parser dispatches.
  const char* kScript =
      "CREATE TABLE t (id INT, v VARCHAR(8));\n"
      "INSERT INTO t VALUES (1, 'a');\n"
      "INSERT INTO t (id) VALUES (2), (3);\n"
      "UPDATE t SET v = '+' WHERE id = 2;\n"
      "DELETE FROM t WHERE id > 7;\n"
      "SELECT x.id FROM t x WHERE x.v = 'a' "
      "UNION SELECT y.id FROM t y WHERE y.v IS NULL;";
  for (int i = 0; i < 300; ++i) {
    (void)reldb::ParseSqlScript(MutateText(rng, kScript));
  }
  // Select statements that survive mutation must round-trip through ToSql.
  for (int i = 0; i < 100; ++i) {
    auto r = reldb::ParseSqlScript(MutateText(rng, kScript));
    if (!r.ok()) continue;
    for (const auto& stmt : *r) {
      if (stmt.kind != reldb::Statement::Kind::kSelect) continue;
      auto again = reldb::ParseSql(stmt.select.ToSql());
      EXPECT_TRUE(again.ok())
          << again.status() << " for " << stmt.select.ToSql();
    }
  }
}

TEST_P(FuzzParsersTest, XQueryParserNeverCrashes) {
  Random rng(GetParam() + 50);
  for (int i = 0; i < 400; ++i) {
    (void)xmldb::ParseXQuery(RandomGarbage(rng, 160));
  }
  const char* kValid =
      "for $n := doc(\"xmlgen\")(//person union //item except //mail) "
      "where count($n/name) return xmlac:annotate($n, \"+\")";
  for (int i = 0; i < 300; ++i) {
    auto r = xmldb::ParseXQuery(MutateText(rng, kValid));
    if (r.ok()) {
      // Accepted queries must round-trip through ToString.
      auto again = xmldb::ParseXQuery((*r)->ToString());
      EXPECT_TRUE(again.ok())
          << again.status() << " for " << (*r)->ToString();
    }
  }
}

TEST_P(FuzzParsersTest, PolicyParserNeverCrashes) {
  Random rng(GetParam() + 40);
  for (int i = 0; i < 300; ++i) {
    (void)policy::ParsePolicy(RandomGarbage(rng, 200));
  }
  for (int i = 0; i < 300; ++i) {
    auto r = policy::ParsePolicy(MutateText(rng, testdata::kHospitalPolicy));
    if (r.ok()) {
      // Accepted policies must round-trip.
      auto again = policy::ParsePolicy(r->ToString());
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParsersTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace xmlac
