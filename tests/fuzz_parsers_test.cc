// Robustness suite: every parser must reject arbitrary garbage and mutated
// valid inputs with a Status — never crash, hang, or accept nonsense that
// then breaks downstream invariants.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "policy/policy.h"
#include "reldb/sql_parser.h"
#include "tests/testdata.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/schema_graph.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xmlac {
namespace {

std::string RandomGarbage(Random& rng, size_t max_len) {
  size_t len = rng.Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Bias toward structural characters so we exercise deep parser states.
    static const char kChars[] =
        "<>/='\"[]()!#&;,.*ab01 \t\nPCDATAELEMENTSELECTWHEREallowdeny-";
    s.push_back(kChars[rng.Uniform(sizeof(kChars) - 1)]);
  }
  return s;
}

// Flip/insert/delete a few characters of a valid input.
std::string Mutate(Random& rng, std::string s) {
  int edits = 1 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    size_t pos = rng.Uniform(s.size());
    switch (rng.Uniform(3)) {
      case 0:
        s[pos] = static_cast<char>(32 + rng.Uniform(95));
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
        break;
    }
  }
  return s;
}

class FuzzParsersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzParsersTest, XmlParserNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    auto r = xml::ParseDocument(RandomGarbage(rng, 200));
    if (r.ok()) {
      // Whatever was accepted must serialize and re-parse.
      auto again = xml::ParseDocument(xml::Serialize(*r));
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
  for (int i = 0; i < 200; ++i) {
    auto r = xml::ParseDocument(Mutate(rng, testdata::kHospitalDoc));
    if (r.ok()) {
      EXPECT_TRUE(xml::ParseDocument(xml::Serialize(*r)).ok());
    }
  }
}

TEST_P(FuzzParsersTest, DtdParserNeverCrashes) {
  Random rng(GetParam() + 10);
  for (int i = 0; i < 300; ++i) {
    (void)xml::ParseDtd(RandomGarbage(rng, 160));
  }
  for (int i = 0; i < 200; ++i) {
    auto r = xml::ParseDtd(Mutate(rng, testdata::kHospitalDtd));
    if (r.ok()) {
      // Accepted DTDs must build a schema graph without issue.
      xml::SchemaGraph g(*r);
      (void)g.IsRecursive();
    }
  }
}

TEST_P(FuzzParsersTest, XPathParserNeverCrashes) {
  Random rng(GetParam() + 20);
  for (int i = 0; i < 500; ++i) {
    auto r = xpath::ParsePath(RandomGarbage(rng, 80));
    if (r.ok()) {
      // Accepted paths must round-trip through ToString.
      auto again = xpath::ParsePath(xpath::ToString(*r));
      EXPECT_TRUE(again.ok())
          << again.status() << " for " << xpath::ToString(*r);
      EXPECT_TRUE(xpath::StructurallyEqual(*r, *again));
    }
  }
  for (int i = 0; i < 300; ++i) {
    (void)xpath::ParsePath(
        Mutate(rng, "//patient[.//experimental and name=\"x\"]/psn"));
  }
}

TEST_P(FuzzParsersTest, SqlParserNeverCrashes) {
  Random rng(GetParam() + 30);
  for (int i = 0; i < 400; ++i) {
    (void)reldb::ParseSql(RandomGarbage(rng, 160));
    (void)reldb::ParseSqlScript(RandomGarbage(rng, 160));
  }
  const char* kValid =
      "SELECT p.id FROM patients ps, patient p "
      "WHERE ps.id = p.pid AND p.v <> 'x';";
  for (int i = 0; i < 300; ++i) {
    (void)reldb::ParseSql(Mutate(rng, kValid));
  }
}

TEST_P(FuzzParsersTest, PolicyParserNeverCrashes) {
  Random rng(GetParam() + 40);
  for (int i = 0; i < 300; ++i) {
    (void)policy::ParsePolicy(RandomGarbage(rng, 200));
  }
  for (int i = 0; i < 300; ++i) {
    auto r = policy::ParsePolicy(Mutate(rng, testdata::kHospitalPolicy));
    if (r.ok()) {
      // Accepted policies must round-trip.
      auto again = policy::ParsePolicy(r->ToString());
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParsersTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace xmlac
