#include "reldb/executor.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace xmlac::reldb {
namespace {

// Runs every executor test against both storage engines.
class ExecutorTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  ExecutorTest() : catalog_(GetParam()), exec_(&catalog_) {}

  void Load(std::string_view script) {
    Status st = exec_.Run(script);
    ASSERT_TRUE(st.ok()) << st;
  }

  ResultSet MustQuery(std::string_view sql) {
    auto r = exec_.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status() << " for: " << sql;
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  // The shredded Fig. 2 patients subtree (Table 4 of the paper).
  void LoadHospital() {
    Load(R"(
      CREATE TABLE patients (id INT, pid INT, s TEXT);
      CREATE TABLE patient (id INT, pid INT, s TEXT);
      CREATE TABLE psn (id INT, pid INT, v TEXT, s TEXT);
      CREATE TABLE name (id INT, pid INT, v TEXT, s TEXT);
      CREATE TABLE treatment (id INT, pid INT, s TEXT);
      CREATE TABLE regular (id INT, pid INT, s TEXT);
      CREATE TABLE experimental (id INT, pid INT, s TEXT);
      CREATE TABLE med (id INT, pid INT, v TEXT, s TEXT);
      CREATE TABLE bill (id INT, pid INT, v TEXT, s TEXT);
      CREATE TABLE test (id INT, pid INT, v TEXT, s TEXT);
      INSERT INTO patients VALUES (1, NULL, '-');
      INSERT INTO patient VALUES (2, 1, '-');
      INSERT INTO psn VALUES (3, 2, '033', '-');
      INSERT INTO name VALUES (8, 2, 'john doe', '+');
      INSERT INTO treatment VALUES (4, 2, '-');
      INSERT INTO regular VALUES (5, 4, '+');
      INSERT INTO med VALUES (6, 5, 'enoxaparin', '-');
      INSERT INTO bill VALUES (7, 5, '700', '+');
      INSERT INTO patient VALUES (9, 1, '-');
      INSERT INTO psn VALUES (10, 9, '042', '-');
      INSERT INTO name VALUES (15, 9, 'jane doe', '+');
      INSERT INTO treatment VALUES (11, 9, '-');
      INSERT INTO experimental VALUES (12, 11, '-');
      INSERT INTO test VALUES (13, 12, 'regression hypnosis', '+');
      INSERT INTO bill VALUES (14, 12, '1600', '+');
      INSERT INTO patient VALUES (16, 1, '+');
      INSERT INTO psn VALUES (17, 16, '099', '-');
      INSERT INTO name VALUES (18, 16, 'joy smith', '+');
    )");
  }

  std::vector<int64_t> SortedIds(const ResultSet& rs) {
    auto ids = rs.IdColumn();
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  Catalog catalog_;
  Executor exec_;
};

TEST_P(ExecutorTest, CreateInsertSelect) {
  LoadHospital();
  ResultSet rs = MustQuery("SELECT p.id FROM patient p");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{2, 9, 16}));
}

TEST_P(ExecutorTest, SelectWithFilter) {
  LoadHospital();
  ResultSet rs = MustQuery("SELECT p.id FROM patient p WHERE p.pid = 1");
  EXPECT_EQ(rs.rows.size(), 3u);
  rs = MustQuery("SELECT b.id FROM bill b WHERE b.v = '700'");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{7}));
}

TEST_P(ExecutorTest, PaperRuleR1Join) {
  LoadHospital();
  // Q1: all patient ids under a patients element.
  ResultSet rs = MustQuery(
      "SELECT pat1.id FROM patients pats1, patient pat1 "
      "WHERE pats1.id = pat1.pid");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{2, 9, 16}));
}

TEST_P(ExecutorTest, PaperRuleR3Join) {
  LoadHospital();
  // Q3: patients that have a treatment child.
  ResultSet rs = MustQuery(
      "SELECT pat1.id FROM patients pats1, patient pat1, treatment treat1 "
      "WHERE pats1.id = pat1.pid AND pat1.id = treat1.pid");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{2, 9}));
}

TEST_P(ExecutorTest, PaperRuleR7JoinWithValue) {
  LoadHospital();
  ResultSet rs = MustQuery(
      "SELECT med1.id FROM patients pats1, patient pat1, treatment treat1, "
      "regular regular1, med med1 "
      "WHERE pats1.id = pat1.pid AND pat1.id = treat1.pid "
      "AND treat1.id = regular1.pid AND regular1.id = med1.pid "
      "AND med1.v = 'celecoxib'");
  EXPECT_TRUE(rs.rows.empty());
  rs = MustQuery(
      "SELECT med1.id FROM patients pats1, patient pat1, treatment treat1, "
      "regular regular1, med med1 "
      "WHERE pats1.id = pat1.pid AND pat1.id = treat1.pid "
      "AND treat1.id = regular1.pid AND regular1.id = med1.pid "
      "AND med1.v = 'enoxaparin'");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{6}));
}

TEST_P(ExecutorTest, PaperAnnotationQueryShape) {
  LoadHospital();
  // (Q1 UNION Q2 UNION Q6) EXCEPT (Q3 UNION Q5): ids accessible under the
  // redundancy-free policy of Table 3.
  ResultSet rs = MustQuery(R"(
    SELECT pat.id FROM patients pats, patient pat WHERE pats.id = pat.pid
    UNION
    SELECT n.id FROM patients pats, patient pat, name n
      WHERE pats.id = pat.pid AND pat.id = n.pid
    UNION
    SELECT r.id FROM treatment t, regular r WHERE t.id = r.pid
    EXCEPT (
      SELECT pat.id FROM patients pats, patient pat, treatment t
        WHERE pats.id = pat.pid AND pat.id = t.pid
      UNION
      SELECT pat.id FROM patients pats, patient pat, treatment t,
                         experimental e
        WHERE pats.id = pat.pid AND pat.id = t.pid AND t.id = e.pid
    )
  )");
  // Accessible: patient 16 (no treatment), names 8/15/18, regular 5.
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{5, 8, 15, 16, 18}));
}

TEST_P(ExecutorTest, UnionDeduplicates) {
  LoadHospital();
  ResultSet rs = MustQuery(
      "SELECT p.id FROM patient p UNION SELECT p.id FROM patient p");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_P(ExecutorTest, ExceptRemovesAll) {
  LoadHospital();
  ResultSet rs = MustQuery(
      "SELECT p.id FROM patient p EXCEPT SELECT p.id FROM patient p");
  EXPECT_TRUE(rs.rows.empty());
}

TEST_P(ExecutorTest, ComparisonOperators) {
  LoadHospital();
  EXPECT_EQ(MustQuery("SELECT b.id FROM bill b WHERE b.v > '1000'").rows.size(),
            1u);
  EXPECT_EQ(
      MustQuery("SELECT b.id FROM bill b WHERE b.v <= '700'").rows.size(), 1u);
  EXPECT_EQ(
      MustQuery("SELECT b.id FROM bill b WHERE b.v <> '700'").rows.size(), 1u);
}

TEST_P(ExecutorTest, OrAndNot) {
  LoadHospital();
  EXPECT_EQ(MustQuery("SELECT p.id FROM psn p WHERE p.v = '033' OR p.v = '042'")
                .rows.size(),
            2u);
  EXPECT_EQ(MustQuery("SELECT p.id FROM psn p WHERE NOT p.v = '033'")
                .rows.size(),
            2u);
}

TEST_P(ExecutorTest, IsNull) {
  LoadHospital();
  ResultSet rs = MustQuery("SELECT t.id FROM patients t WHERE t.pid IS NULL");
  EXPECT_EQ(rs.rows.size(), 1u);
  rs = MustQuery("SELECT t.id FROM patients t WHERE t.pid IS NOT NULL");
  EXPECT_TRUE(rs.rows.empty());
}

TEST_P(ExecutorTest, NullNeverEqual) {
  LoadHospital();
  EXPECT_TRUE(
      MustQuery("SELECT t.id FROM patients t WHERE t.pid = NULL").rows.empty());
}

TEST_P(ExecutorTest, Update) {
  LoadHospital();
  auto n = exec_.Query("UPDATE patient SET s = '+' WHERE id = 2");
  ASSERT_TRUE(n.ok()) << n.status();
  ResultSet rs = MustQuery("SELECT p.id FROM patient p WHERE p.s = '+'");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{2, 16}));
}

TEST_P(ExecutorTest, UpdateAllRows) {
  LoadHospital();
  ASSERT_TRUE(exec_.Query("UPDATE patient SET s = '-'").ok());
  EXPECT_TRUE(
      MustQuery("SELECT p.id FROM patient p WHERE p.s = '+'").rows.empty());
}

TEST_P(ExecutorTest, Delete) {
  LoadHospital();
  ASSERT_TRUE(exec_.Query("DELETE FROM treatment WHERE pid = 2").ok());
  ResultSet rs = MustQuery("SELECT t.id FROM treatment t");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{11}));
  // A join through the deleted tuple yields nothing.
  rs = MustQuery(
      "SELECT r.id FROM treatment t, regular r WHERE t.id = r.pid");
  EXPECT_TRUE(rs.rows.empty());
}

TEST_P(ExecutorTest, IndexedPointUpdateUsesIndex) {
  LoadHospital();
  ASSERT_TRUE(catalog_.GetTable("patient")->CreateIndex("id").ok());
  exec_.ResetStats();
  ASSERT_TRUE(exec_.Query("UPDATE patient SET s = '+' WHERE id = 9").ok());
  EXPECT_EQ(exec_.stats().index_hits, 1u);
  // Only the indexed row was touched.
  EXPECT_EQ(exec_.stats().rows_scanned, 1u);
}

TEST_P(ExecutorTest, CrossJoinWithoutPredicate) {
  Load(R"(
    CREATE TABLE a (x INT);
    CREATE TABLE b (y INT);
    INSERT INTO a VALUES (1), (2);
    INSERT INTO b VALUES (10), (20), (30);
  )");
  ResultSet rs = MustQuery("SELECT a.x, b.y FROM a, b");
  EXPECT_EQ(rs.rows.size(), 6u);
}

TEST_P(ExecutorTest, NonEquiJoinPredicate) {
  Load(R"(
    CREATE TABLE a (x INT);
    CREATE TABLE b (y INT);
    INSERT INTO a VALUES (1), (2);
    INSERT INTO b VALUES (1), (2), (3);
  )");
  ResultSet rs = MustQuery("SELECT a.x, b.y FROM a, b WHERE a.x < b.y");
  // (1,2) (1,3) (2,3).
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_P(ExecutorTest, SelfJoinWithAliases) {
  Load(R"(
    CREATE TABLE e (id INT, mgr INT);
    INSERT INTO e VALUES (1, NULL), (2, 1), (3, 1), (4, 2);
  )");
  ResultSet rs = MustQuery(
      "SELECT b.id FROM e a, e b WHERE a.id = b.mgr AND a.mgr = 1");
  EXPECT_EQ(SortedIds(rs), (std::vector<int64_t>{4}));
}

TEST_P(ExecutorTest, ErrorsSurface) {
  LoadHospital();
  EXPECT_EQ(exec_.Query("SELECT x.id FROM nosuch x").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(exec_.Query("SELECT p.nosuch FROM patient p").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      exec_.Query("SELECT q.id FROM patient p WHERE q.id = 1").status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(exec_.Query("SELECT p.id FROM patient p, patient p")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(exec_.Query("INSERT INTO patient VALUES (1)").status().code(),
            StatusCode::kInvalidArgument);
  // Set op with mismatched widths.
  EXPECT_EQ(exec_.Query("SELECT p.id, p.pid FROM patient p UNION "
                        "SELECT p.id FROM patient p")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_P(ExecutorTest, AmbiguousUnqualifiedColumn) {
  LoadHospital();
  EXPECT_EQ(exec_.Query("SELECT id FROM patient p, psn q").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(ExecutorTest, InsertWithColumnListFillsNulls) {
  Load("CREATE TABLE t (id INT, pid INT, v TEXT);");
  ASSERT_TRUE(exec_.Query("INSERT INTO t (id, v) VALUES (1, 'x')").ok());
  ResultSet rs = MustQuery("SELECT t.id FROM t WHERE t.pid IS NULL");
  EXPECT_EQ(rs.rows.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ExecutorTest,
                         ::testing::Values(StorageKind::kRowStore,
                                           StorageKind::kColumnStore),
                         [](const auto& info) {
                           return info.param == StorageKind::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

TEST(CatalogTest, CreateDropGet) {
  Catalog c(StorageKind::kRowStore);
  auto t = c.CreateTable(TableSchema("t", {{"id", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  EXPECT_NE(c.GetTable("t"), nullptr);
  EXPECT_EQ(c.NumTables(), 1u);
  EXPECT_EQ(c.CreateTable(TableSchema("t", {})).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(c.DropTable("t").ok());
  EXPECT_EQ(c.GetTable("t"), nullptr);
  EXPECT_EQ(c.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TotalRows) {
  Catalog c(StorageKind::kColumnStore);
  auto t1 = c.CreateTable(TableSchema("a", {{"x", ValueType::kInt64}}));
  auto t2 = c.CreateTable(TableSchema("b", {{"x", ValueType::kInt64}}));
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*t1)->Insert({Value::Int(1)}).ok());
  ASSERT_TRUE((*t2)->Insert({Value::Int(2)}).ok());
  ASSERT_TRUE((*t2)->Insert({Value::Int(3)}).ok());
  EXPECT_EQ(c.TotalRows(), 3u);
}

}  // namespace
}  // namespace xmlac::reldb
