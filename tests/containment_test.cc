#include "xpath/containment.h"

#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xmlac::xpath {
namespace {

Path P(std::string_view text) {
  auto r = ParsePath(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

// --- Containment cases straight from the paper (Sec. 5.1, Table 3) ------

TEST(ContainmentTest, PaperRuleR4ContainedInR2) {
  // //patient[treatment]/name  ⊑  //patient/name
  EXPECT_TRUE(Contains(P("//patient[treatment]/name"), P("//patient/name")));
  EXPECT_FALSE(Contains(P("//patient/name"), P("//patient[treatment]/name")));
}

TEST(ContainmentTest, PaperRuleR7R8ContainedInR6) {
  EXPECT_TRUE(Contains(P("//regular[med=\"celecoxib\"]"), P("//regular")));
  EXPECT_TRUE(Contains(P("//regular[bill > 1000]"), P("//regular")));
  EXPECT_FALSE(Contains(P("//regular"), P("//regular[med=\"celecoxib\"]")));
}

TEST(ContainmentTest, PaperRuleR3ContainedInR1) {
  EXPECT_TRUE(Contains(P("//patient[treatment]"), P("//patient")));
  EXPECT_FALSE(Contains(P("//patient"), P("//patient[treatment]")));
}

// --- Structural cases ----------------------------------------------------

TEST(ContainmentTest, ChildPathContainedInDescendant) {
  EXPECT_TRUE(Contains(P("/a/b/c"), P("//c")));
  EXPECT_TRUE(Contains(P("/a/b/c"), P("/a//c")));
  EXPECT_TRUE(Contains(P("/a/b/c"), P("//b/c")));
  EXPECT_FALSE(Contains(P("//c"), P("/a/b/c")));
}

TEST(ContainmentTest, DescendantDoesNotContainSiblingShape) {
  EXPECT_FALSE(Contains(P("/a/c"), P("/a/b/c")));
  EXPECT_FALSE(Contains(P("//a/c"), P("//a/b//c")));
}

TEST(ContainmentTest, SelfContainment) {
  for (const char* e :
       {"//a", "/a/b", "//a[b]", "//a[b=\"v\"]", "/a//b[.//c]/d"}) {
    EXPECT_TRUE(Contains(P(e), P(e))) << e;
  }
}

TEST(ContainmentTest, WildcardAbsorbsLabels) {
  EXPECT_TRUE(Contains(P("//a"), P("//*")));
  EXPECT_TRUE(Contains(P("/a/b"), P("/a/*")));
  EXPECT_TRUE(Contains(P("/a/b"), P("/*/*")));
  EXPECT_FALSE(Contains(P("//*"), P("//a")));
  EXPECT_FALSE(Contains(P("/a/*"), P("/a/b")));
}

TEST(ContainmentTest, DescendantStepAbsorbsLongerChains) {
  EXPECT_TRUE(Contains(P("/a/b/c/d"), P("/a//d")));
  EXPECT_TRUE(Contains(P("/a//b//c"), P("/a//c")));
  EXPECT_TRUE(Contains(P("//a//b"), P("//b")));
}

TEST(ContainmentTest, PredicatesWeakenTheContainee) {
  EXPECT_TRUE(Contains(P("//a[b][c]"), P("//a[b]")));
  EXPECT_TRUE(Contains(P("//a[b and c]"), P("//a[c]")));
  EXPECT_FALSE(Contains(P("//a[b]"), P("//a[b and c]")));
}

TEST(ContainmentTest, NestedPredicates) {
  EXPECT_TRUE(Contains(P("//a[b[c]]"), P("//a[b]")));
  EXPECT_TRUE(Contains(P("//a[b[c]]"), P("//a[b/c]")));
  EXPECT_FALSE(Contains(P("//a[b]"), P("//a[b[c]]")));
}

TEST(ContainmentTest, DescendantPredicateAbsorbsChildPredicate) {
  EXPECT_TRUE(Contains(P("//a[b/c]"), P("//a[.//c]")));
  EXPECT_FALSE(Contains(P("//a[.//c]"), P("//a[b/c]")));
}

TEST(ContainmentTest, ValueConstraints) {
  EXPECT_TRUE(Contains(P("//a[b=\"x\"]"), P("//a[b]")));
  EXPECT_FALSE(Contains(P("//a[b]"), P("//a[b=\"x\"]")));
  EXPECT_TRUE(Contains(P("//a[b=\"x\"]"), P("//a[b=\"x\"]")));
  EXPECT_FALSE(Contains(P("//a[b=\"x\"]"), P("//a[b=\"y\"]")));
  EXPECT_FALSE(Contains(P("//a[b>1]"), P("//a[b>2]")));  // conservative
}

TEST(ContainmentTest, OutputNodeMustAlign) {
  // Same node set shape but different output element.
  EXPECT_FALSE(Contains(P("//a/b"), P("//a")));
  EXPECT_FALSE(Contains(P("//a"), P("//a/b")));
  // //a/b vs //b: both output b.
  EXPECT_TRUE(Contains(P("//a/b"), P("//b")));
}

TEST(ContainmentTest, Equivalence) {
  EXPECT_TRUE(Equivalent(P("//a"), P("//a")));
  EXPECT_TRUE(Equivalent(P("//a[b][c]"), P("//a[c][b]")));
  EXPECT_TRUE(Equivalent(P("//a[b and c]"), P("//a[b][c]")));
  EXPECT_FALSE(Equivalent(P("//a"), P("/a")));
  // /a ⊑ //a but not vice versa.
  EXPECT_TRUE(Contains(P("/a"), P("//a")));
  EXPECT_FALSE(Contains(P("//a"), P("/a")));
}

TEST(ContainmentTest, RedundantPredicateEquivalence) {
  EXPECT_TRUE(Equivalent(P("//a[b]"), P("//a[b][b]")));
}

TEST(ContainmentTest, DisjointnessByOutputLabel) {
  EXPECT_TRUE(ProvablyDisjoint(P("//a"), P("//b")));
  EXPECT_TRUE(ProvablyDisjoint(P("//patient/name"), P("//patient/psn")));
  EXPECT_FALSE(ProvablyDisjoint(P("//a"), P("//a")));
  EXPECT_FALSE(ProvablyDisjoint(P("//a"), P("//*")));
}

TEST(ContainmentTest, DisjointnessByRigidSpine) {
  EXPECT_TRUE(ProvablyDisjoint(P("/a/b/c"), P("/a/d/c")));
  EXPECT_TRUE(ProvablyDisjoint(P("/a/c"), P("/a/b/c")));
  EXPECT_FALSE(ProvablyDisjoint(P("/a/b/c"), P("/a/b/c")));
  EXPECT_FALSE(ProvablyDisjoint(P("//a/c"), P("/a/b/c")));  // maybe overlap
}

TEST(ContainmentTest, MayOverlap) {
  EXPECT_TRUE(MayOverlap(P("//patient"), P("//patient[treatment]")));
  EXPECT_FALSE(MayOverlap(P("//med"), P("//bill")));
}

TEST(ContainmentTest, DeepChainPerformance) {
  // A long chain against its descendant-step generalisation; guards the
  // memoised search against exponential blowup.
  std::string chain = "/a";
  for (int i = 0; i < 40; ++i) chain += "/a";
  EXPECT_TRUE(Contains(P(chain), P("//a//a//a//a")));
  EXPECT_FALSE(Contains(P("//a//a//a//a"), P(chain)));
}

}  // namespace
}  // namespace xmlac::xpath
